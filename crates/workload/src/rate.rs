//! Time-varying arrival-rate profiles (the fluctuating MAF workload, §6.3).

use simkit::{SimRng, SimTime};

/// A piecewise-constant arrival-rate function `t -> requests/second`.
///
/// # Example
///
/// ```
/// use simkit::SimTime;
/// use workload::RateProfile;
///
/// let p = RateProfile::maf_like(0.35, 2.0);
/// assert!(p.rate_at(SimTime::from_secs(350)) > p.rate_at(SimTime::ZERO));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RateProfile {
    steps: Vec<(SimTime, f64)>,
}

impl RateProfile {
    /// Builds a profile from `(time, rate)` steps.
    ///
    /// # Panics
    ///
    /// Panics if `steps` is empty, does not start at `t = 0`, is not
    /// strictly increasing in time, or contains a negative/non-finite rate.
    pub fn from_steps(steps: Vec<(SimTime, f64)>) -> Self {
        assert!(!steps.is_empty(), "profile must have at least one step");
        assert_eq!(steps[0].0, SimTime::ZERO, "profile must start at t=0");
        for w in steps.windows(2) {
            assert!(w[0].0 < w[1].0, "profile steps must be strictly increasing");
        }
        assert!(
            steps.iter().all(|&(_, r)| r.is_finite() && r >= 0.0),
            "rates must be finite and non-negative"
        );
        RateProfile { steps }
    }

    /// A constant-rate profile.
    pub fn constant(rate: f64) -> Self {
        RateProfile::from_steps(vec![(SimTime::ZERO, rate)])
    }

    /// The §6.3 fluctuating workload: a rescaled-MAF-shaped 15-minute
    /// profile around `base` rate with a burst reaching `base × burst`.
    ///
    /// Shape matches the Figure 8 narrative: steady start, ramp beginning
    /// at t = 270 s that overwhelms the initial configuration by t = 300 s,
    /// sustained burst until t = 600 s, then decay below base.
    pub fn maf_like(base: f64, burst: f64) -> Self {
        let s = |t: u64, r: f64| (SimTime::from_secs(t), r);
        RateProfile::from_steps(vec![
            s(0, base),
            s(200, base * 1.15),
            s(270, base * burst * 0.8),
            s(330, base * burst),
            s(450, base * burst * 0.9),
            s(600, base * 0.8),
            s(720, base * 0.6),
            s(840, base * 0.7),
        ])
    }

    /// A synthetic stand-in for the raw (pre-rescaling) MAF trace of
    /// Figure 8a: an hour-scale sawtooth with noise, sampled per minute.
    /// Used only for the Figure 8a panel.
    pub fn maf_raw(rng: &mut SimRng) -> Self {
        let mut steps = Vec::new();
        for minute in 0..180u64 {
            let t = minute as f64;
            // Two diurnal-ish humps plus noise.
            let base =
                0.55 + 0.12 * (t / 30.0).sin() + 0.08 * (t / 11.0).cos() + 0.05 * (rng.f64() - 0.5);
            steps.push((SimTime::from_secs(minute * 60), base.max(0.05)));
        }
        RateProfile { steps }
    }

    /// The rate at time `t`.
    pub fn rate_at(&self, t: SimTime) -> f64 {
        match self.steps.binary_search_by_key(&t, |&(st, _)| st) {
            Ok(i) => self.steps[i].1,
            Err(0) => unreachable!("first step at t=0"),
            Err(i) => self.steps[i - 1].1,
        }
    }

    /// The next step boundary strictly after `t`, if any.
    pub fn next_change_after(&self, t: SimTime) -> Option<SimTime> {
        self.steps.iter().map(|&(st, _)| st).find(|&st| st > t)
    }

    /// The raw `(time, rate)` steps.
    pub fn steps(&self) -> &[(SimTime, f64)] {
        &self.steps
    }

    /// The maximum rate anywhere in the profile.
    pub fn peak_rate(&self) -> f64 {
        self.steps.iter().map(|&(_, r)| r).fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_between_steps() {
        let p = RateProfile::from_steps(vec![(SimTime::ZERO, 1.0), (SimTime::from_secs(10), 2.0)]);
        assert_eq!(p.rate_at(SimTime::from_secs(5)), 1.0);
        assert_eq!(p.rate_at(SimTime::from_secs(10)), 2.0);
        assert_eq!(p.rate_at(SimTime::from_secs(99)), 2.0);
        assert_eq!(
            p.next_change_after(SimTime::ZERO),
            Some(SimTime::from_secs(10))
        );
        assert_eq!(p.next_change_after(SimTime::from_secs(10)), None);
    }

    #[test]
    fn maf_like_narrative_shape() {
        let p = RateProfile::maf_like(0.35, 2.0);
        let at = |t: u64| p.rate_at(SimTime::from_secs(t));
        assert!(at(300) > at(0) * 1.5, "burst overwhelms by t=300");
        assert_eq!(p.peak_rate(), 0.7);
        assert!(at(700) < at(0), "decays below base after t=600");
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_rate_panics() {
        RateProfile::from_steps(vec![(SimTime::ZERO, -1.0)]);
    }

    #[test]
    fn maf_raw_is_deterministic_per_seed() {
        let a = RateProfile::maf_raw(&mut SimRng::new(3).stream("maf"));
        let b = RateProfile::maf_raw(&mut SimRng::new(3).stream("maf"));
        assert_eq!(a, b);
        assert!(a.steps().len() == 180);
        assert!(a.peak_rate() < 1.0);
    }
}
