//! Request workloads for the serving experiments.
//!
//! The paper evaluates on (a) *stable* workloads — fixed arrival rate with
//! a Gamma arrival process of coefficient-of-variation 6 to model burstiness
//! (§6.1) — and (b) a *fluctuating* workload replayed from a rescaled
//! Microsoft Azure Functions (MAF) trace (§6.3). This crate generates both,
//! deterministically, from named [`simkit::SimRng`] streams, and provides
//! the latency-report plumbing shared by all experiment harnesses.
//!
//! # Example
//!
//! ```
//! use simkit::{SimDuration, SimRng};
//! use workload::{ArrivalProcess, WorkloadSpec};
//!
//! let spec = WorkloadSpec {
//!     process: ArrivalProcess::Gamma { rate: 0.35, cv: 6.0 },
//!     duration: SimDuration::from_secs(1200),
//!     s_in: 512,
//!     s_out: 128,
//! };
//! let reqs = spec.generate(&mut SimRng::new(1).stream("arrivals"));
//! assert!(!reqs.is_empty());
//! // Mean rate over 20 minutes should be in the right ballpark.
//! let rate = reqs.len() as f64 / 1200.0;
//! assert!((rate - 0.35).abs() < 0.15, "rate {rate}");
//! ```

pub mod arrival;
pub mod rate;
pub mod request;
pub mod stats;

pub use arrival::{ArrivalProcess, LengthDist, OutputDist, WorkloadSpec};
pub use rate::RateProfile;
pub use request::{apply_slo, Request, RequestId, RequestOutcome};
pub use stats::LatencyReport;
