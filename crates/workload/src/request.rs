//! Inference requests and their outcomes.

use std::fmt;

use simkit::{SimDuration, SimTime};

/// Unique request identifier (arrival order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RequestId(pub u64);

impl fmt::Display for RequestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// One generative inference request.
///
/// # Example
///
/// ```
/// use simkit::{SimDuration, SimTime};
/// use workload::{Request, RequestId};
/// let r = Request::new(RequestId(0), SimTime::from_secs(3), 512, 128);
/// assert_eq!(r.total_tokens(), 640);
/// let tight = r.with_slo(SimDuration::from_secs(30));
/// assert_eq!(tight.deadline, Some(SimTime::from_secs(33)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// Identifier, dense in arrival order.
    pub id: RequestId,
    /// When the request reaches the inference server.
    pub arrival: SimTime,
    /// Input (prompt) length in tokens.
    pub s_in: u32,
    /// Output length in tokens (the paper fixes the generation length).
    pub s_out: u32,
    /// Optional completion deadline (`arrival + SLO`). `None` means the
    /// request is best-effort; SLO-aware admission only prices requests
    /// that carry a deadline.
    pub deadline: Option<SimTime>,
}

impl Request {
    /// A best-effort request (no deadline).
    pub fn new(id: RequestId, arrival: SimTime, s_in: u32, s_out: u32) -> Self {
        Request {
            id,
            arrival,
            s_in,
            s_out,
            deadline: None,
        }
    }

    /// This request with a completion deadline of `arrival + slo`.
    pub fn with_slo(mut self, slo: SimDuration) -> Self {
        self.deadline = Some(self.arrival + slo);
        self
    }

    /// Input plus output tokens.
    pub fn total_tokens(&self) -> u32 {
        self.s_in + self.s_out
    }

    /// The earliest-deadline-first ordering key: the deadline for
    /// SLO-carrying requests, `SimTime::MAX` for best-effort ones — so an
    /// EDF sort puts every deadline carrier (most urgent first) ahead of
    /// the best-effort tail, and a *stable* sort leaves the best-effort
    /// tail in FIFO order.
    pub fn edf_key(&self) -> SimTime {
        self.deadline.unwrap_or(SimTime::MAX)
    }
}

/// Stamps every request with a deadline of `arrival + slo` (the uniform-SLO
/// workload axis for SLO-aware admission).
pub fn apply_slo(requests: &mut [Request], slo: SimDuration) {
    for r in requests {
        r.deadline = Some(r.arrival + slo);
    }
}

/// A completed request with its end-to-end latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestOutcome {
    /// The request served.
    pub request: Request,
    /// When its last output token was delivered.
    pub finished: SimTime,
}

impl RequestOutcome {
    /// End-to-end latency `l_req = l_sch + l_exe`.
    pub fn latency(&self) -> SimDuration {
        self.finished.saturating_since(self.request.arrival)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_is_finish_minus_arrival() {
        let o = RequestOutcome {
            request: Request::new(RequestId(1), SimTime::from_secs(10), 512, 128),
            finished: SimTime::from_secs(40),
        };
        assert_eq!(o.latency(), SimDuration::from_secs(30));
    }

    #[test]
    fn apply_slo_stamps_deadlines() {
        let mut reqs = vec![
            Request::new(RequestId(0), SimTime::from_secs(1), 512, 128),
            Request::new(RequestId(1), SimTime::from_secs(5), 512, 128),
        ];
        apply_slo(&mut reqs, SimDuration::from_secs(20));
        assert_eq!(reqs[0].deadline, Some(SimTime::from_secs(21)));
        assert_eq!(reqs[1].deadline, Some(SimTime::from_secs(25)));
    }

    #[test]
    fn display_request_id() {
        assert_eq!(format!("{}", RequestId(7)), "r7");
    }
}
