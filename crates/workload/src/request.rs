//! Inference requests and their outcomes.

use std::fmt;

use simkit::{SimDuration, SimTime};

/// Unique request identifier (arrival order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RequestId(pub u64);

impl fmt::Display for RequestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// One generative inference request.
///
/// # Example
///
/// ```
/// use simkit::SimTime;
/// use workload::{Request, RequestId};
/// let r = Request {
///     id: RequestId(0),
///     arrival: SimTime::from_secs(3),
///     s_in: 512,
///     s_out: 128,
/// };
/// assert_eq!(r.total_tokens(), 640);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// Identifier, dense in arrival order.
    pub id: RequestId,
    /// When the request reaches the inference server.
    pub arrival: SimTime,
    /// Input (prompt) length in tokens.
    pub s_in: u32,
    /// Output length in tokens (the paper fixes the generation length).
    pub s_out: u32,
}

impl Request {
    /// Input plus output tokens.
    pub fn total_tokens(&self) -> u32 {
        self.s_in + self.s_out
    }
}

/// A completed request with its end-to-end latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestOutcome {
    /// The request served.
    pub request: Request,
    /// When its last output token was delivered.
    pub finished: SimTime,
}

impl RequestOutcome {
    /// End-to-end latency `l_req = l_sch + l_exe`.
    pub fn latency(&self) -> SimDuration {
        self.finished.saturating_since(self.request.arrival)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_is_finish_minus_arrival() {
        let o = RequestOutcome {
            request: Request {
                id: RequestId(1),
                arrival: SimTime::from_secs(10),
                s_in: 512,
                s_out: 128,
            },
            finished: SimTime::from_secs(40),
        };
        assert_eq!(o.latency(), SimDuration::from_secs(30));
    }

    #[test]
    fn display_request_id() {
        assert_eq!(format!("{}", RequestId(7)), "r7");
    }
}
