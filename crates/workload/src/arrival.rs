//! Stationary arrival processes.

use simkit::{SimDuration, SimRng, SimTime};

use crate::rate::RateProfile;
use crate::request::{Request, RequestId};

/// How request inter-arrival times are drawn.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// Memoryless arrivals at `rate` requests/second.
    Poisson {
        /// Mean arrival rate, requests/second.
        rate: f64,
    },
    /// Gamma-renewal arrivals: mean `1/rate`, coefficient of variation
    /// `cv`. The paper uses `cv = 6` "to simulate the burstiness of real
    /// workloads" (§6.1); `cv = 1` degenerates to Poisson.
    Gamma {
        /// Mean arrival rate, requests/second.
        rate: f64,
        /// Coefficient of variation of inter-arrival times.
        cv: f64,
    },
}

impl ArrivalProcess {
    /// Draws one inter-arrival gap.
    ///
    /// # Panics
    ///
    /// Panics if the process parameters are not strictly positive.
    pub fn sample_gap(&self, rng: &mut SimRng) -> SimDuration {
        match *self {
            ArrivalProcess::Poisson { rate } => {
                assert!(rate > 0.0, "rate must be positive");
                SimDuration::from_secs_f64(rng.exp(rate))
            }
            ArrivalProcess::Gamma { rate, cv } => {
                assert!(rate > 0.0 && cv > 0.0, "rate and cv must be positive");
                // Gamma with mean 1/rate and CV c has shape k = 1/c²,
                // scale θ = c²/rate.
                let k = 1.0 / (cv * cv);
                let theta = cv * cv / rate;
                SimDuration::from_secs_f64(rng.gamma(k, theta))
            }
        }
    }

    /// The mean rate of the process.
    pub fn rate(&self) -> f64 {
        match *self {
            ArrivalProcess::Poisson { rate } | ArrivalProcess::Gamma { rate, .. } => rate,
        }
    }
}

/// How per-request output lengths are drawn.
///
/// The paper fixes `S_out = 128`; the iteration-level engine opens the
/// heterogeneous axis — under fixed batching every batch member is
/// hostage to its longest peer, while continuous batching retires each
/// request at its own last token.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OutputDist {
    /// Every request generates exactly this many tokens.
    Fixed(u32),
    /// Uniform in `[lo, hi]` (inclusive).
    Uniform {
        /// Shortest generation.
        lo: u32,
        /// Longest generation.
        hi: u32,
    },
    /// Long-tail: most requests generate `common` tokens, a
    /// `tail_fraction` of them generate `tail`.
    LongTail {
        /// The typical generation length.
        common: u32,
        /// The tail generation length.
        tail: u32,
        /// Probability of a tail request.
        tail_fraction: f64,
    },
}

/// A token-length distribution. [`OutputDist`] predates the mixed-prompt
/// axis; the same shapes describe prompt lengths, so the alias names that
/// use without duplicating the type.
pub type LengthDist = OutputDist;

impl OutputDist {
    /// Draws one output length.
    ///
    /// # Panics
    ///
    /// Panics if the distribution can produce zero tokens, if a uniform
    /// range is inverted, or if `tail_fraction` is not a probability.
    pub fn sample(&self, rng: &mut SimRng) -> u32 {
        match *self {
            OutputDist::Fixed(n) => {
                assert!(n > 0, "generation must produce tokens");
                n
            }
            OutputDist::Uniform { lo, hi } => {
                assert!(0 < lo && lo <= hi, "bad uniform range [{lo}, {hi}]");
                rng.range_inclusive(lo as u64, hi as u64) as u32
            }
            OutputDist::LongTail {
                common,
                tail,
                tail_fraction,
            } => {
                assert!(common > 0 && tail > 0, "generation must produce tokens");
                assert!(
                    (0.0..=1.0).contains(&tail_fraction),
                    "tail_fraction {tail_fraction} is not a probability"
                );
                if rng.chance(tail_fraction) {
                    tail
                } else {
                    common
                }
            }
        }
    }
}

/// A complete workload description.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    /// The arrival process.
    pub process: ArrivalProcess,
    /// How long requests keep arriving.
    pub duration: SimDuration,
    /// Prompt length of every request (the paper fixes 512).
    pub s_in: u32,
    /// Generation length of every request (the paper fixes 128).
    pub s_out: u32,
}

impl WorkloadSpec {
    /// The paper's stable workload for `model_rate` (1.5 / 0.35 / 0.2 req/s
    /// for OPT-6.7B / GPT-20B / LLaMA-30B), 20 minutes, Gamma CV 6.
    pub fn paper_stable(model_rate: f64) -> Self {
        WorkloadSpec {
            process: ArrivalProcess::Gamma {
                rate: model_rate,
                cv: 6.0,
            },
            duration: SimDuration::from_secs(1200),
            s_in: 512,
            s_out: 128,
        }
    }

    /// Generates the request stream.
    pub fn generate(&self, rng: &mut SimRng) -> Vec<Request> {
        // `Fixed` consumes no RNG draws, so this is bit-identical to the
        // historical fixed-s_out generator.
        self.generate_mixed(&OutputDist::Fixed(self.s_out), rng)
    }

    /// Generates the request stream with per-request output lengths drawn
    /// from `outputs` (overriding this spec's fixed `s_out`) — the mixed
    /// `S_out` scenario axis for the iteration-level engine.
    pub fn generate_mixed(&self, outputs: &OutputDist, rng: &mut SimRng) -> Vec<Request> {
        self.generate_with_lengths(&LengthDist::Fixed(self.s_in), outputs, rng)
    }

    /// Generates the request stream with *both* prompt and output lengths
    /// drawn per request — the long-prompt/short-prompt mixed axis that
    /// chunked prefill targets (a monolithic long prefill stalls every
    /// decoding neighbour; chunking bounds the stall to one chunk).
    ///
    /// `Fixed` distributions consume no RNG draws, so
    /// `generate_with_lengths(Fixed(s_in), Fixed(s_out), ..)` is
    /// bit-identical to [`WorkloadSpec::generate`].
    pub fn generate_with_lengths(
        &self,
        inputs: &LengthDist,
        outputs: &LengthDist,
        rng: &mut SimRng,
    ) -> Vec<Request> {
        let mut out = Vec::new();
        let mut t = SimTime::ZERO;
        loop {
            t += self.process.sample_gap(rng);
            if t.saturating_since(SimTime::ZERO) >= self.duration {
                break;
            }
            out.push(Request::new(
                RequestId(out.len() as u64),
                t,
                inputs.sample(rng),
                outputs.sample(rng),
            ));
        }
        out
    }

    /// Generates a request stream whose rate follows `profile` (for the
    /// fluctuating MAF experiment): inter-arrival gaps are drawn from this
    /// spec's process shape, rescaled to the instantaneous rate.
    pub fn generate_with_profile(&self, profile: &RateProfile, rng: &mut SimRng) -> Vec<Request> {
        let mut out = Vec::new();
        let mut t = SimTime::ZERO;
        loop {
            let rate = profile.rate_at(t);
            let gap = if rate <= 0.0 {
                // Jump to the next profile step with a positive rate.
                match profile.next_change_after(t) {
                    Some(next) => next.saturating_since(t),
                    None => break,
                }
            } else {
                let scaled = match self.process {
                    ArrivalProcess::Poisson { .. } => ArrivalProcess::Poisson { rate },
                    ArrivalProcess::Gamma { cv, .. } => ArrivalProcess::Gamma { rate, cv },
                };
                scaled.sample_gap(rng)
            };
            t += gap;
            if t.saturating_since(SimTime::ZERO) >= self.duration {
                break;
            }
            if profile.rate_at(t) <= 0.0 {
                continue;
            }
            out.push(Request::new(
                RequestId(out.len() as u64),
                t,
                self.s_in,
                self.s_out,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::new(42).stream("arrivals")
    }

    #[test]
    fn mixed_outputs_follow_the_distribution() {
        let spec = WorkloadSpec {
            process: ArrivalProcess::Poisson { rate: 1.0 },
            duration: SimDuration::from_secs(20_000),
            s_in: 512,
            s_out: 128,
        };
        let dist = OutputDist::LongTail {
            common: 64,
            tail: 1024,
            tail_fraction: 0.05,
        };
        let reqs = spec.generate_mixed(&dist, &mut rng());
        assert!(reqs.iter().all(|r| r.s_out == 64 || r.s_out == 1024));
        let tails = reqs.iter().filter(|r| r.s_out == 1024).count();
        let frac = tails as f64 / reqs.len() as f64;
        assert!((frac - 0.05).abs() < 0.02, "tail fraction {frac}");
        // Deterministic per seed.
        assert_eq!(reqs, spec.generate_mixed(&dist, &mut rng()));
    }

    #[test]
    fn mixed_prompt_lengths_follow_the_distribution() {
        let spec = WorkloadSpec {
            process: ArrivalProcess::Poisson { rate: 1.0 },
            duration: SimDuration::from_secs(5_000),
            s_in: 512,
            s_out: 128,
        };
        let inputs = LengthDist::LongTail {
            common: 256,
            tail: 4096,
            tail_fraction: 0.1,
        };
        let reqs = spec.generate_with_lengths(&inputs, &LengthDist::Fixed(64), &mut rng());
        assert!(reqs.iter().all(|r| r.s_in == 256 || r.s_in == 4096));
        assert!(reqs.iter().all(|r| r.s_out == 64 && r.deadline.is_none()));
        assert!(reqs.iter().any(|r| r.s_in == 4096), "tail must appear");
        // Fixed/Fixed is bit-identical to the plain generator.
        let a = spec.generate(&mut rng());
        let b = spec.generate_with_lengths(
            &LengthDist::Fixed(512),
            &LengthDist::Fixed(128),
            &mut rng(),
        );
        assert_eq!(a, b);
    }

    #[test]
    fn uniform_outputs_stay_in_range() {
        let dist = OutputDist::Uniform { lo: 16, hi: 256 };
        let mut r = rng();
        for _ in 0..200 {
            let s = dist.sample(&mut r);
            assert!((16..=256).contains(&s));
        }
        assert_eq!(OutputDist::Fixed(128).sample(&mut r), 128);
    }

    #[test]
    #[should_panic(expected = "bad uniform range")]
    fn inverted_uniform_panics() {
        OutputDist::Uniform { lo: 9, hi: 3 }.sample(&mut rng());
    }

    #[test]
    fn poisson_rate_is_respected() {
        let spec = WorkloadSpec {
            process: ArrivalProcess::Poisson { rate: 2.0 },
            duration: SimDuration::from_secs(10_000),
            s_in: 512,
            s_out: 128,
        };
        let reqs = spec.generate(&mut rng());
        let rate = reqs.len() as f64 / 10_000.0;
        assert!((rate - 2.0).abs() < 0.1, "rate {rate}");
    }

    #[test]
    fn gamma_cv6_is_bursty() {
        // With CV 6 the inter-arrival distribution is heavily skewed:
        // most gaps tiny, a few huge. Compare squared CV empirically.
        let spec = WorkloadSpec {
            process: ArrivalProcess::Gamma { rate: 1.0, cv: 6.0 },
            duration: SimDuration::from_secs(200_000),
            s_in: 512,
            s_out: 128,
        };
        let reqs = spec.generate(&mut rng());
        let gaps: Vec<f64> = reqs
            .windows(2)
            .map(|w| (w[1].arrival - w[0].arrival).as_secs_f64())
            .collect();
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        let var = gaps.iter().map(|g| (g - mean) * (g - mean)).sum::<f64>() / gaps.len() as f64;
        let cv = var.sqrt() / mean;
        assert!(cv > 4.0, "measured CV {cv}");
        assert!((mean - 1.0).abs() < 0.25, "mean gap {mean}");
    }

    #[test]
    fn ids_are_dense_and_arrivals_sorted() {
        let spec = WorkloadSpec::paper_stable(1.5);
        let reqs = spec.generate(&mut rng());
        for (i, r) in reqs.iter().enumerate() {
            assert_eq!(r.id, RequestId(i as u64));
        }
        assert!(reqs.windows(2).all(|w| w[0].arrival <= w[1].arrival));
        assert!(reqs
            .iter()
            .all(|r| r.arrival.saturating_since(SimTime::ZERO) < spec.duration));
    }

    #[test]
    fn deterministic_generation() {
        let spec = WorkloadSpec::paper_stable(0.35);
        let a = spec.generate(&mut rng());
        let b = spec.generate(&mut rng());
        assert_eq!(a, b);
    }

    #[test]
    fn profile_modulates_rate() {
        let profile =
            RateProfile::from_steps(vec![(SimTime::ZERO, 0.2), (SimTime::from_secs(500), 2.0)]);
        let spec = WorkloadSpec {
            process: ArrivalProcess::Poisson { rate: 1.0 },
            duration: SimDuration::from_secs(1000),
            s_in: 512,
            s_out: 128,
        };
        let reqs = spec.generate_with_profile(&profile, &mut rng());
        let early = reqs
            .iter()
            .filter(|r| r.arrival < SimTime::from_secs(500))
            .count();
        let late = reqs.len() - early;
        assert!(late > early * 3, "late {late} vs early {early}");
    }

    #[test]
    fn zero_rate_segments_produce_no_requests() {
        let profile = RateProfile::from_steps(vec![
            (SimTime::ZERO, 0.0),
            (SimTime::from_secs(100), 1.0),
            (SimTime::from_secs(200), 0.0),
        ]);
        let spec = WorkloadSpec {
            process: ArrivalProcess::Poisson { rate: 1.0 },
            duration: SimDuration::from_secs(300),
            s_in: 512,
            s_out: 128,
        };
        let reqs = spec.generate_with_profile(&profile, &mut rng());
        assert!(!reqs.is_empty());
        assert!(reqs
            .iter()
            .all(|r| r.arrival >= SimTime::from_secs(100) && r.arrival < SimTime::from_secs(200)));
    }
}
