//! Latency reporting shared by the experiment harnesses.

use simkit::{metrics::Percentiles, Sampler, SimTime};

use crate::request::RequestOutcome;

/// Collects completed requests and produces the paper's latency summaries.
///
/// # Example
///
/// ```
/// use simkit::SimTime;
/// use workload::{LatencyReport, Request, RequestId, RequestOutcome};
///
/// let mut rep = LatencyReport::new("SpotServe");
/// rep.record(RequestOutcome {
///     request: Request::new(RequestId(0), SimTime::ZERO, 512, 128),
///     finished: SimTime::from_secs(20),
/// });
/// let p = rep.percentiles();
/// assert_eq!(p.count, 1);
/// assert_eq!(p.p99, 20.0);
/// ```
#[derive(Debug, Clone)]
pub struct LatencyReport {
    name: String,
    latencies: Sampler,
    outcomes: Vec<RequestOutcome>,
    tokens_generated: u64,
}

impl LatencyReport {
    /// Creates an empty report labelled `name` (e.g. the system under test).
    pub fn new(name: impl Into<String>) -> Self {
        LatencyReport {
            name: name.into(),
            latencies: Sampler::new(),
            outcomes: Vec::new(),
            tokens_generated: 0,
        }
    }

    /// The report label.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Records one completed request.
    pub fn record(&mut self, outcome: RequestOutcome) {
        self.latencies.record(outcome.latency().as_secs_f64());
        self.tokens_generated += outcome.request.s_out as u64;
        self.outcomes.push(outcome);
    }

    /// Number of completed requests.
    pub fn completed(&self) -> usize {
        self.outcomes.len()
    }

    /// Total output tokens generated (the denominator of Figure 7's
    /// USD-per-token cost metric).
    pub fn tokens_generated(&self) -> u64 {
        self.tokens_generated
    }

    /// Latency percentiles in seconds (Figure 6 format).
    pub fn percentiles(&mut self) -> Percentiles {
        self.latencies.percentiles()
    }

    /// Per-request `(arrival, latency_secs)` pairs in completion order
    /// (Figure 8g/8h timelines).
    pub fn timeline(&self) -> impl Iterator<Item = (SimTime, f64)> + '_ {
        self.outcomes
            .iter()
            .map(|o| (o.request.arrival, o.latency().as_secs_f64()))
    }

    /// All recorded outcomes.
    pub fn outcomes(&self) -> &[RequestOutcome] {
        &self.outcomes
    }

    /// Fraction of *deadline-carrying* completions that met their deadline
    /// (SLO attainment), or `None` when no completion carried one.
    pub fn slo_attainment(&self) -> Option<f64> {
        let (mut total, mut met) = (0u64, 0u64);
        for o in &self.outcomes {
            if let Some(deadline) = o.request.deadline {
                total += 1;
                if o.finished <= deadline {
                    met += 1;
                }
            }
        }
        (total > 0).then(|| met as f64 / total as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{Request, RequestId};
    use simkit::SimDuration;

    fn outcome(id: u64, arrive_s: u64, latency_s: u64) -> RequestOutcome {
        let arrival = SimTime::from_secs(arrive_s);
        RequestOutcome {
            request: Request::new(RequestId(id), arrival, 512, 128),
            finished: arrival + SimDuration::from_secs(latency_s),
        }
    }

    #[test]
    fn aggregates_latencies_and_tokens() {
        let mut rep = LatencyReport::new("test");
        for i in 0..10 {
            rep.record(outcome(i, i, 10 + i));
        }
        assert_eq!(rep.completed(), 10);
        assert_eq!(rep.tokens_generated(), 1280);
        let p = rep.percentiles();
        assert_eq!(p.count, 10);
        assert!((p.mean - 14.5).abs() < 1e-9);
        assert_eq!(p.p99, 19.0);
    }

    #[test]
    fn slo_attainment_counts_only_deadline_carriers() {
        let mut rep = LatencyReport::new("slo");
        rep.record(outcome(0, 0, 10)); // best-effort: excluded
        let mut met = outcome(1, 0, 10);
        met.request = met.request.with_slo(SimDuration::from_secs(20));
        rep.record(met);
        let mut bust = outcome(2, 0, 30);
        bust.request = bust.request.with_slo(SimDuration::from_secs(20));
        rep.record(bust);
        assert_eq!(rep.slo_attainment(), Some(0.5));
        assert_eq!(LatencyReport::new("x").slo_attainment(), None);
    }

    #[test]
    fn timeline_preserves_order() {
        let mut rep = LatencyReport::new("t");
        rep.record(outcome(0, 5, 30));
        rep.record(outcome(1, 7, 20));
        let tl: Vec<(SimTime, f64)> = rep.timeline().collect();
        assert_eq!(tl[0], (SimTime::from_secs(5), 30.0));
        assert_eq!(tl[1], (SimTime::from_secs(7), 20.0));
    }
}
