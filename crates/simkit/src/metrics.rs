//! Online statistics and exact percentile collection.
//!
//! Experiments in this workspace report average and tail latencies
//! (P90–P99, like the paper's Figure 6). Sample counts are small enough
//! (thousands of requests) that exact percentiles over retained samples are
//! both affordable and more trustworthy than sketches.

/// Streaming mean/variance/min/max via Welford's algorithm.
///
/// # Example
///
/// ```
/// use simkit::OnlineStats;
/// let mut s = OnlineStats::new();
/// for x in [1.0, 2.0, 3.0] {
///     s.record(x);
/// }
/// assert_eq!(s.mean(), 2.0);
/// assert_eq!(s.count(), 3);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations recorded.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean, or 0 if empty.
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance, or 0 if fewer than two observations.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Folds another accumulator into this one (pairwise Welford / Chan et
    /// al. combination), as if every observation recorded into `other` had
    /// been recorded here. Mean and variance of the merged accumulator match
    /// a single-accumulator run over the union to floating-point roundoff.
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n_a = self.n as f64;
        let n_b = other.n as f64;
        let n = n_a + n_b;
        let delta = other.mean - self.mean;
        self.mean += delta * (n_b / n);
        self.m2 += other.m2 + delta * delta * (n_a * n_b / n);
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Smallest observation, or `None` if empty.
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Largest observation, or `None` if empty.
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }
}

/// Retains all samples and answers exact quantile queries.
///
/// # Example
///
/// ```
/// use simkit::Sampler;
/// let mut s = Sampler::new();
/// for i in 1..=100 {
///     s.record(i as f64);
/// }
/// assert_eq!(s.quantile(0.99), Some(99.0));
/// assert_eq!(s.quantile(0.5), Some(50.0));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Sampler {
    samples: Vec<f64>,
    sorted: bool,
}

impl Sampler {
    /// Creates an empty sampler.
    pub fn new() -> Self {
        Sampler {
            samples: Vec::new(),
            sorted: true,
        }
    }

    /// Records one sample.
    ///
    /// # Panics
    ///
    /// Panics if `x` is NaN — a NaN latency is always a bug upstream.
    pub fn record(&mut self, x: f64) {
        assert!(!x.is_nan(), "NaN sample");
        self.samples.push(x);
        self.sorted = false;
    }

    /// Number of recorded samples.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Exact q-quantile (nearest-rank, `0.0 <= q <= 1.0`), or `None` if empty.
    ///
    /// Uses the nearest-rank definition: the smallest sample such that at
    /// least `q·n` samples are ≤ it. `quantile(1.0)` is the maximum.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&mut self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
        if self.samples.is_empty() {
            return None;
        }
        if !self.sorted {
            self.samples
                .sort_unstable_by(|a, b| a.partial_cmp(b).expect("no NaNs"));
            self.sorted = true;
        }
        let n = self.samples.len();
        let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
        Some(self.samples[rank - 1])
    }

    /// Answers many quantile queries with a single sort.
    ///
    /// Appends one value per entry of `qs` (in `qs` order) to `out`,
    /// each exactly what [`Sampler::quantile`] would return for that `q`.
    /// An empty sampler appends nothing. `out` is *not* cleared, so a
    /// caller can batch several samplers into one row.
    ///
    /// # Panics
    ///
    /// Panics if any `q` is outside `[0, 1]`.
    ///
    /// # Example
    ///
    /// ```
    /// use simkit::Sampler;
    /// let mut s: Sampler = (1..=100).map(|i| i as f64).collect();
    /// let mut row = Vec::new();
    /// s.quantiles_into(&[0.5, 0.99, 1.0], &mut row);
    /// assert_eq!(row, [50.0, 99.0, 100.0]);
    /// ```
    pub fn quantiles_into(&mut self, qs: &[f64], out: &mut Vec<f64>) {
        for &q in qs {
            assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
        }
        if self.samples.is_empty() {
            return;
        }
        if !self.sorted {
            self.samples
                .sort_unstable_by(|a, b| a.partial_cmp(b).expect("no NaNs"));
            self.sorted = true;
        }
        let n = self.samples.len();
        out.reserve(qs.len());
        out.extend(qs.iter().map(|&q| {
            let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
            self.samples[rank - 1]
        }));
    }

    /// Sample mean, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        if self.samples.is_empty() {
            None
        } else {
            Some(self.samples.iter().sum::<f64>() / self.samples.len() as f64)
        }
    }

    /// Folds another sampler's samples into this one.
    ///
    /// Because samplers retain every sample, a sharded-then-merged sampler
    /// holds exactly the same multiset as a single sampler fed the union, so
    /// every quantile is *bitwise* identical; only `mean()` (a fresh
    /// summation in storage order) can differ by roundoff.
    pub fn merge(&mut self, other: &Sampler) {
        if other.samples.is_empty() {
            return;
        }
        self.samples.extend_from_slice(&other.samples);
        self.sorted = false;
    }

    /// Read-only view of the raw samples (unspecified order).
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Summarizes into the percentile set the paper reports.
    pub fn percentiles(&mut self) -> Percentiles {
        Percentiles {
            count: self.count(),
            mean: self.mean().unwrap_or(0.0),
            p50: self.quantile(0.50).unwrap_or(0.0),
            p90: self.quantile(0.90).unwrap_or(0.0),
            p95: self.quantile(0.95).unwrap_or(0.0),
            p96: self.quantile(0.96).unwrap_or(0.0),
            p97: self.quantile(0.97).unwrap_or(0.0),
            p98: self.quantile(0.98).unwrap_or(0.0),
            p99: self.quantile(0.99).unwrap_or(0.0),
            max: self.quantile(1.0).unwrap_or(0.0),
        }
    }
}

impl FromIterator<f64> for Sampler {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = Sampler::new();
        for x in iter {
            s.record(x);
        }
        s
    }
}

impl Extend<f64> for Sampler {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.record(x);
        }
    }
}

/// The percentile summary reported by the experiment harness
/// (matches the x-axis of the paper's Figure 6: Avg, P90…P99).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Percentiles {
    /// Number of samples summarized.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median.
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 96th percentile.
    pub p96: f64,
    /// 97th percentile.
    pub p97: f64,
    /// 98th percentile.
    pub p98: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Maximum sample.
    pub max: f64,
}

impl Percentiles {
    /// The metrics in Figure 6 order: `[Avg, P90, P95, P96, P97, P98, P99]`.
    pub fn figure6_row(&self) -> [f64; 7] {
        [
            self.mean, self.p90, self.p95, self.p96, self.p97, self.p98, self.p99,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_basic() {
        let mut s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), None);
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn sampler_quantiles_exact() {
        let mut s: Sampler = (1..=1000).map(|i| i as f64).collect();
        assert_eq!(s.quantile(0.0), Some(1.0));
        assert_eq!(s.quantile(0.001), Some(1.0));
        assert_eq!(s.quantile(0.5), Some(500.0));
        assert_eq!(s.quantile(0.99), Some(990.0));
        assert_eq!(s.quantile(1.0), Some(1000.0));
    }

    #[test]
    fn sampler_unordered_input() {
        let mut s = Sampler::new();
        for x in [5.0, 1.0, 3.0, 2.0, 4.0] {
            s.record(x);
        }
        assert_eq!(s.quantile(0.5), Some(3.0));
        // Interleave: record after querying.
        s.record(0.5);
        assert_eq!(s.quantile(0.0), Some(0.5));
    }

    #[test]
    fn quantiles_into_matches_single_queries() {
        let mut s: Sampler = (0..997).map(|i| (i * 31 % 997) as f64).collect();
        let qs = [0.0, 0.25, 0.5, 0.9, 0.99, 1.0];
        let mut batch = Vec::new();
        s.quantiles_into(&qs, &mut batch);
        let single: Vec<f64> = qs.iter().map(|&q| s.quantile(q).unwrap()).collect();
        assert_eq!(batch, single);
        // Appends without clearing, and an empty sampler appends nothing.
        s.quantiles_into(&[0.5], &mut batch);
        assert_eq!(batch.len(), qs.len() + 1);
        let mut empty = Sampler::new();
        let mut out = vec![7.0];
        empty.quantiles_into(&[0.5, 0.9], &mut out);
        assert_eq!(out, [7.0]);
    }

    #[test]
    #[should_panic(expected = "quantile out of range")]
    fn quantiles_into_rejects_out_of_range() {
        let mut s: Sampler = [1.0, 2.0].into_iter().collect();
        s.quantiles_into(&[0.5, 1.5], &mut Vec::new());
    }

    #[test]
    fn empty_sampler() {
        let mut s = Sampler::new();
        assert!(s.is_empty());
        assert_eq!(s.quantile(0.9), None);
        assert_eq!(s.mean(), None);
        let p = s.percentiles();
        assert_eq!(p.count, 0);
        assert_eq!(p.p99, 0.0);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_sample_panics() {
        Sampler::new().record(f64::NAN);
    }

    #[test]
    fn percentiles_monotone() {
        let mut s: Sampler = (0..500).map(|i| (i * 7 % 500) as f64).collect();
        let p = s.percentiles();
        let row = p.figure6_row();
        for w in row[1..].windows(2) {
            assert!(w[0] <= w[1], "percentiles must be monotone: {row:?}");
        }
        assert!(p.p50 <= p.p90 && p.p99 <= p.max);
    }
}
