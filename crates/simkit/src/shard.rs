//! Sharded future-event lists and the deterministic fork/join helper the
//! parallel simulation core is built on.
//!
//! A [`ShardedEventQueue`] partitions one logical future-event list into
//! per-shard [`EventQueue`]s. Each shard can be advanced independently (and
//! therefore on its own worker thread) between synchronization barriers; the
//! merged view pops events in `(SimTime, shard_id, seq)` order, so the merged
//! stream is a pure function of what was scheduled — never of which thread
//! got there first.
//!
//! [`run_shards`] is the matching execution helper: it applies one closure to
//! every shard, either inline or across scoped worker threads. Shards are
//! assigned to workers in fixed contiguous chunks and each worker walks its
//! chunk in shard order, so any per-shard mutation is identical for every
//! thread count — determinism comes from *partitioning*, not from locks.

use crate::event::{EventKey, EventQueue};
use crate::time::SimTime;

/// A future-event list split into independently-advanceable shards.
///
/// Within a shard, events pop in `(time, seq)` FIFO order exactly like a
/// plain [`EventQueue`]. Across shards, ties at the same timestamp are broken
/// by shard id. Both tie-breaks are stable under re-execution, which is what
/// keeps N-thread replays byte-identical to 1-thread replays.
///
/// # Example
///
/// ```
/// use simkit::{ShardedEventQueue, SimTime};
///
/// let mut q: ShardedEventQueue<&'static str> = ShardedEventQueue::new(2);
/// let t = SimTime::from_secs(5);
/// q.schedule(1, t, "shard-1");
/// q.schedule(0, t, "shard-0");
/// // Same timestamp: the lower shard id wins, regardless of schedule order.
/// assert_eq!(q.pop_next(), Some((0, t, "shard-0")));
/// assert_eq!(q.pop_next(), Some((1, t, "shard-1")));
/// ```
#[derive(Debug, Clone)]
pub struct ShardedEventQueue<E> {
    shards: Vec<EventQueue<E>>,
}

impl<E> ShardedEventQueue<E> {
    /// Creates a queue with `shards` empty shards.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn new(shards: usize) -> Self {
        assert!(shards > 0, "at least one shard required");
        ShardedEventQueue {
            shards: (0..shards).map(|_| EventQueue::new()).collect(),
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Mutable access to one shard's queue (for advancing it on a worker).
    pub fn shard_mut(&mut self, shard: usize) -> &mut EventQueue<E> {
        &mut self.shards[shard]
    }

    /// Disjoint mutable access to every shard at once, for fan-out.
    pub fn shards_mut(&mut self) -> &mut [EventQueue<E>] {
        &mut self.shards
    }

    /// Schedules `event` on `shard` at `time`.
    pub fn schedule(&mut self, shard: usize, time: SimTime, event: E) -> EventKey {
        self.shards[shard].schedule(time, event)
    }

    /// Cancels an event previously scheduled on `shard`.
    pub fn cancel(&mut self, shard: usize, key: EventKey) -> bool {
        self.shards[shard].cancel(key)
    }

    /// Earliest live timestamp across all shards.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.shards
            .iter_mut()
            .filter_map(EventQueue::peek_time)
            .min()
    }

    /// Pops the globally next event in `(time, shard_id, seq)` order,
    /// returning the shard it came from.
    pub fn pop_next(&mut self) -> Option<(usize, SimTime, E)> {
        let mut best: Option<(SimTime, usize)> = None;
        for (i, shard) in self.shards.iter_mut().enumerate() {
            if let Some(t) = shard.peek_time() {
                // Strict `<` keeps the earliest shard id on ties.
                if best.map(|(bt, _)| t < bt).unwrap_or(true) {
                    best = Some((t, i));
                }
            }
        }
        let (_, i) = best?;
        let (t, ev) = self.shards[i].pop().expect("peeked shard is non-empty");
        Some((i, t, ev))
    }

    /// Total number of live events across shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(EventQueue::len).sum()
    }

    /// Whether every shard is empty.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(EventQueue::is_empty)
    }
}

/// Applies `f` to every shard, spreading shards across at most `threads`
/// scoped worker threads.
///
/// Shards are split into `threads` contiguous chunks; worker `w` owns chunk
/// `w` and walks it in ascending shard order. Because the chunking depends
/// only on `shards.len()` and `threads`, and each shard is visited by exactly
/// one worker, the per-shard effects of `f` are identical for every thread
/// count — including `threads == 1`, which runs inline with no thread spawn
/// at all.
pub fn run_shards<S, F>(shards: &mut [S], threads: usize, f: F)
where
    S: Send,
    F: Fn(usize, &mut S) + Sync,
{
    let threads = threads.max(1).min(shards.len().max(1));
    if threads <= 1 {
        for (i, shard) in shards.iter_mut().enumerate() {
            f(i, shard);
        }
        return;
    }
    let n = shards.len();
    let chunk = n.div_ceil(threads);
    std::thread::scope(|scope| {
        for (w, slice) in shards.chunks_mut(chunk).enumerate() {
            let f = &f;
            scope.spawn(move || {
                for (j, shard) in slice.iter_mut().enumerate() {
                    f(w * chunk + j, shard);
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn merges_by_time_then_shard_then_seq() {
        let mut q = ShardedEventQueue::new(3);
        q.schedule(2, t(1), "c1");
        q.schedule(0, t(2), "a2");
        q.schedule(1, t(1), "b1");
        q.schedule(1, t(1), "b1-later");
        q.schedule(0, t(1), "a1");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop_next().map(|(_, _, e)| e)).collect();
        assert_eq!(order, vec!["a1", "b1", "b1-later", "c1", "a2"]);
    }

    #[test]
    fn peek_time_is_global_minimum() {
        let mut q = ShardedEventQueue::new(2);
        assert_eq!(q.peek_time(), None);
        q.schedule(1, t(9), ());
        q.schedule(0, t(4), ());
        assert_eq!(q.peek_time(), Some(t(4)));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn cancellation_is_per_shard() {
        let mut q = ShardedEventQueue::new(2);
        let k = q.schedule(0, t(1), "dead");
        q.schedule(1, t(1), "live");
        assert!(q.cancel(0, k));
        assert_eq!(q.pop_next(), Some((1, t(1), "live")));
        assert_eq!(q.pop_next(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn run_shards_output_is_thread_count_invariant() {
        // Each shard deterministically accumulates from its own index; the
        // result must not depend on how shards were spread over workers.
        let reference: Vec<u64> = (0..13u64).map(|i| i * i + 7).collect();
        for threads in [1, 2, 3, 8, 32] {
            let mut shards: Vec<u64> = vec![0; 13];
            run_shards(&mut shards, threads, |i, v| {
                *v = (i as u64) * (i as u64) + 7;
            });
            assert_eq!(shards, reference, "threads={threads}");
        }
    }

    #[test]
    fn run_shards_visits_every_shard_exactly_once() {
        let visited = AtomicUsize::new(0);
        let mut shards: Vec<u32> = vec![0; 7];
        run_shards(&mut shards, 3, |_, v| {
            *v += 1;
            visited.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(visited.load(Ordering::Relaxed), 7);
        assert!(shards.iter().all(|&v| v == 1));
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_panics() {
        let _ = ShardedEventQueue::<()>::new(0);
    }
}
