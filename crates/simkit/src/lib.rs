//! Deterministic discrete-event simulation kernel.
//!
//! `simkit` provides the minimal, reusable machinery that every other crate
//! in this workspace builds on:
//!
//! * [`SimTime`] / [`SimDuration`] — microsecond-resolution simulated time
//!   with saturating arithmetic and human-readable formatting,
//! * [`EventQueue`] — a deterministic future-event list (ties broken by
//!   insertion order, never by hash or pointer identity),
//! * [`ShardedEventQueue`] / [`run_shards`] — per-shard future-event lists
//!   merged in `(SimTime, shard_id, seq)` order plus a deterministic
//!   fork/join helper, the substrate of the parallel simulation core,
//! * [`SimRng`] — named, independently-seeded random streams derived from a
//!   single master seed, so that adding a new consumer of randomness does
//!   not perturb existing streams,
//! * [`metrics`] — online summary statistics and exact percentile
//!   collection used by the experiment harness.
//!
//! # Example
//!
//! ```
//! use simkit::{EventQueue, SimDuration, SimTime};
//!
//! let mut q: EventQueue<&'static str> = EventQueue::new();
//! q.schedule(SimTime::ZERO + SimDuration::from_secs(2), "later");
//! q.schedule(SimTime::ZERO + SimDuration::from_secs(1), "sooner");
//! let (t, ev) = q.pop().unwrap();
//! assert_eq!(ev, "sooner");
//! assert_eq!(t.as_secs_f64(), 1.0);
//! ```

pub mod event;
pub mod metrics;
pub mod rng;
pub mod shard;
pub mod time;

pub use event::EventQueue;
pub use metrics::{OnlineStats, Percentiles, Sampler};
pub use rng::SimRng;
pub use shard::{run_shards, ShardedEventQueue};
pub use time::{SimDuration, SimTime};
