//! Deterministic random streams.
//!
//! The simulator derives every random quantity from a single master seed via
//! *named streams*: `SimRng::new(seed).stream("arrivals")` always yields the
//! same sequence for the same `(seed, name)` pair, independent of any other
//! stream. Adding a new consumer of randomness therefore never perturbs
//! existing experiments — a property plain `StdRng` sharing does not give.
//!
//! The generator is xoshiro256++ seeded through SplitMix64, implemented
//! in-repo so results are stable across dependency upgrades. Distribution
//! sampling (exponential, normal, gamma) is also implemented here; gamma
//! uses the Marsaglia–Tsang squeeze method.

/// A deterministic pseudo-random number generator with named sub-streams.
///
/// # Example
///
/// ```
/// use simkit::SimRng;
///
/// let mut a = SimRng::new(42).stream("arrivals");
/// let mut b = SimRng::new(42).stream("arrivals");
/// assert_eq!(a.next_u64(), b.next_u64());
///
/// let mut c = SimRng::new(42).stream("preemptions");
/// // Different stream names give independent sequences.
/// let _ = c.next_u64();
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    state: [u64; 4],
}

fn splitmix64(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a hash of a byte string; used to turn stream names into seed salt.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01B3);
    }
    h
}

impl SimRng {
    /// Creates a generator from a master seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let state = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng { state }
    }

    /// Derives an independent stream identified by `name`.
    ///
    /// The derived stream depends on this generator's *seed lineage*, not on
    /// how many numbers have been drawn from it, so call order is irrelevant.
    pub fn stream(&self, name: &str) -> SimRng {
        // Mix the lineage (initial state) with the name hash.
        let salt = fnv1a(name.as_bytes());
        let mut sm = self.state[0] ^ salt.rotate_left(17) ^ self.state[3];
        let state = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng { state }
    }

    /// Next raw 64-bit value (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` with 53 random bits.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is meaningless");
        // Lemire-style rejection to avoid modulo bias.
        let threshold = n.wrapping_neg() % n;
        loop {
            let r = self.next_u64();
            let (hi, lo) = {
                let wide = (r as u128) * (n as u128);
                ((wide >> 64) as u64, wide as u64)
            };
            if lo >= threshold {
                return hi;
            }
        }
    }

    /// Uniform integer in the inclusive range `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "range_inclusive: {lo} > {hi}");
        if lo == 0 && hi == u64::MAX {
            return self.next_u64();
        }
        lo + self.below(hi - lo + 1)
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0,1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Exponential variate with the given `rate` (mean `1/rate`).
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not strictly positive.
    pub fn exp(&mut self, rate: f64) -> f64 {
        assert!(rate > 0.0, "exp rate must be positive, got {rate}");
        let u = 1.0 - self.f64(); // in (0, 1]
        -u.ln() / rate
    }

    /// Standard normal variate (Marsaglia polar method).
    pub fn normal(&mut self) -> f64 {
        loop {
            let u = 2.0 * self.f64() - 1.0;
            let v = 2.0 * self.f64() - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                return u * (-2.0 * s.ln() / s).sqrt();
            }
        }
    }

    /// Gamma variate with shape `k` and scale `theta` (mean `k·theta`).
    ///
    /// Uses Marsaglia–Tsang for `k >= 1` and the boosting transform
    /// `Gamma(k) = Gamma(k+1) · U^{1/k}` for `k < 1`.
    ///
    /// # Panics
    ///
    /// Panics if `k` or `theta` is not strictly positive.
    pub fn gamma(&mut self, k: f64, theta: f64) -> f64 {
        assert!(k > 0.0 && theta > 0.0, "gamma params must be positive");
        if k < 1.0 {
            let u = loop {
                let u = self.f64();
                if u > 0.0 {
                    break u;
                }
            };
            return self.gamma(k + 1.0, theta) * u.powf(1.0 / k);
        }
        let d = k - 1.0 / 3.0;
        let c = 1.0 / (9.0 * d).sqrt();
        loop {
            let x = self.normal();
            let v = 1.0 + c * x;
            if v <= 0.0 {
                continue;
            }
            let v3 = v * v * v;
            let u = self.f64();
            if u < 1.0 - 0.0331 * x.powi(4) || u.ln() < 0.5 * x * x + d * (1.0 - v3 + v3.ln()) {
                return d * v3 * theta;
            }
        }
    }

    /// Shuffles a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }

    /// Picks a uniformly random element, or `None` if the slice is empty.
    pub fn choose<'a, T>(&mut self, xs: &'a [T]) -> Option<&'a T> {
        if xs.is_empty() {
            None
        } else {
            Some(&xs[self.below(xs.len() as u64) as usize])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn streams_are_independent_of_draw_order() {
        let root = SimRng::new(99);
        let mut s1 = root.stream("a");
        let _ = s1.next_u64();
        // Deriving "b" after drawing from "a" matches deriving it fresh.
        let mut b1 = root.stream("b");
        let mut b2 = SimRng::new(99).stream("b");
        assert_eq!(b1.next_u64(), b2.next_u64());
    }

    #[test]
    fn stream_names_matter() {
        let root = SimRng::new(5);
        let mut a = root.stream("alpha");
        let mut b = root.stream("beta");
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SimRng::new(3);
        for _ in 0..10_000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_is_unbiased_enough() {
        let mut r = SimRng::new(11);
        let mut counts = [0usize; 5];
        for _ in 0..50_000 {
            counts[r.below(5) as usize] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "count {c} out of range");
        }
    }

    #[test]
    fn exp_mean_matches_rate() {
        let mut r = SimRng::new(13);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.exp(2.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn normal_moments() {
        let mut r = SimRng::new(17);
        let n = 100_000;
        let xs: Vec<f64> = (0..n).map(|_| r.normal()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn gamma_moments() {
        let mut r = SimRng::new(19);
        let (k, theta) = (4.0, 0.5);
        let n = 100_000;
        let xs: Vec<f64> = (0..n).map(|_| r.gamma(k, theta)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - k * theta).abs() < 0.05, "mean {mean}");
        assert!((var - k * theta * theta).abs() < 0.1, "var {var}");
    }

    #[test]
    fn gamma_small_shape() {
        let mut r = SimRng::new(23);
        let n = 100_000;
        let xs: Vec<f64> = (0..n).map(|_| r.gamma(0.3, 1.0)).collect();
        assert!(xs.iter().all(|&x| x >= 0.0));
        let mean = xs.iter().sum::<f64>() / n as f64;
        assert!((mean - 0.3).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SimRng::new(29);
        let mut xs: Vec<u32> = (0..100).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn choose_empty_is_none() {
        let mut r = SimRng::new(31);
        let empty: [u8; 0] = [];
        assert_eq!(r.choose(&empty), None);
        assert!(r.choose(&[1, 2, 3]).is_some());
    }
}
