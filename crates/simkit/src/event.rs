//! Deterministic future-event list.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// A deterministic priority queue of timed events.
///
/// Events pop in non-decreasing time order; events scheduled for the same
/// instant pop in the order they were scheduled (FIFO). This tie-break rule
/// is what makes whole-simulation determinism possible — two events at the
/// same timestamp must never race on heap internals.
///
/// Entries can be cancelled lazily via the [`EventKey`] returned by
/// [`EventQueue::schedule`].
///
/// # Example
///
/// ```
/// use simkit::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// let t = SimTime::from_secs(1);
/// q.schedule(t, 'a');
/// let key = q.schedule(t, 'b');
/// q.schedule(t, 'c');
/// q.cancel(key);
/// let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
/// assert_eq!(order, vec!['a', 'c']);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    /// Seqs scheduled and neither fired nor cancelled.
    live: std::collections::HashSet<u64>,
    cancelled: std::collections::HashSet<u64>,
}

/// Handle identifying a scheduled event, used for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventKey(u64);

#[derive(Debug, Clone)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so earliest (time, seq) pops first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            live: std::collections::HashSet::new(),
            cancelled: std::collections::HashSet::new(),
        }
    }

    /// Schedules `event` to fire at `time`, returning a cancellation key.
    pub fn schedule(&mut self, time: SimTime, event: E) -> EventKey {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, event });
        self.live.insert(seq);
        EventKey(seq)
    }

    /// Cancels a previously scheduled event.
    ///
    /// Returns `true` if the event had not yet fired or been cancelled;
    /// cancelling an already-fired event is a safe no-op. Cancellation is
    /// lazy: the entry is dropped when it reaches the front.
    pub fn cancel(&mut self, key: EventKey) -> bool {
        if self.live.remove(&key.0) {
            self.cancelled.insert(key.0);
            true
        } else {
            false
        }
    }

    /// Removes and returns the earliest live event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(entry) = self.heap.pop() {
            if self.cancelled.remove(&entry.seq) {
                continue;
            }
            self.live.remove(&entry.seq);
            return Some((entry.time, entry.event));
        }
        None
    }

    /// The timestamp of the earliest live event without removing it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        while let Some(entry) = self.heap.peek() {
            if self.cancelled.contains(&entry.seq) {
                let seq = entry.seq;
                self.heap.pop();
                self.cancelled.remove(&seq);
            } else {
                return Some(entry.time);
            }
        }
        None
    }

    /// Number of live (scheduled, not fired, not cancelled) events.
    pub fn len(&self) -> usize {
        self.live.len()
    }

    /// Whether there are no live events.
    pub fn is_empty(&self) -> bool {
        self.live.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(t(3), 3);
        q.schedule(t(1), 1);
        q.schedule(t(2), 2);
        let out: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(t(7), i);
        }
        let out: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(out, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn cancel_removes_event() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), "a");
        q.schedule(t(2), "b");
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "double-cancel reports false");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().unwrap().1, "b");
        assert!(q.pop().is_none());
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), "a");
        q.schedule(t(5), "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(t(5)));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn empty_queue_behaviour() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
        assert_eq!(q.peek_time(), None);
        assert!(!q.cancel(EventKey(42)), "unknown key is a no-op");
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(t(1), 1);
        q.schedule(t(10), 10);
        assert_eq!(q.pop().unwrap().1, 1);
        q.schedule(t(5), 5);
        assert_eq!(q.pop().unwrap().1, 5);
        assert_eq!(q.pop().unwrap().1, 10);
    }

    #[test]
    fn same_time_after_pop_still_fifo() {
        let mut q = EventQueue::new();
        let time = SimTime::ZERO + SimDuration::from_millis(1);
        q.schedule(time, 'x');
        assert_eq!(q.pop().unwrap().1, 'x');
        q.schedule(time, 'y');
        q.schedule(time, 'z');
        assert_eq!(q.pop().unwrap().1, 'y');
        assert_eq!(q.pop().unwrap().1, 'z');
    }
}
