//! Deterministic future-event list.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// A deterministic priority queue of timed events.
///
/// Events pop in non-decreasing time order; events scheduled for the same
/// instant pop in the order they were scheduled (FIFO). This tie-break rule
/// is what makes whole-simulation determinism possible — two events at the
/// same timestamp must never race on heap internals.
///
/// Entries can be cancelled lazily via the [`EventKey`] returned by
/// [`EventQueue::schedule`].
///
/// # Example
///
/// ```
/// use simkit::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// let t = SimTime::from_secs(1);
/// q.schedule(t, 'a');
/// let key = q.schedule(t, 'b');
/// q.schedule(t, 'c');
/// q.cancel(key);
/// let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
/// assert_eq!(order, vec!['a', 'c']);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    /// Every seq below this is dead and its tombstone has been compacted
    /// away. Advanced whenever the heap is observed empty (at that point all
    /// previously issued seqs have fired or been cancelled).
    base_seq: u64,
    /// Tombstone bitmap, one bit per seq at or above `base_seq`: set once the
    /// event has fired or been cancelled. Indexed by `seq - base_seq`.
    dead: Vec<u64>,
    /// Number of scheduled events that have neither fired nor been cancelled.
    live: usize,
}

/// Handle identifying a scheduled event, used for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventKey(u64);

#[derive(Debug, Clone)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so earliest (time, seq) pops first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            base_seq: 0,
            dead: Vec::new(),
            live: 0,
        }
    }

    fn is_dead(&self, seq: u64) -> bool {
        if seq < self.base_seq {
            return true;
        }
        let idx = (seq - self.base_seq) as usize;
        self.dead
            .get(idx / 64)
            .is_some_and(|w| w >> (idx % 64) & 1 == 1)
    }

    fn mark_dead(&mut self, seq: u64) {
        let idx = (seq - self.base_seq) as usize;
        let word = idx / 64;
        if word >= self.dead.len() {
            self.dead.resize(word + 1, 0);
        }
        self.dead[word] |= 1u64 << (idx % 64);
    }

    /// Drops all tombstones once the heap is empty (every issued seq is then
    /// dead), so bitmap memory tracks the heap's high-water mark per drain
    /// cycle instead of growing with total events scheduled.
    fn compact(&mut self) {
        debug_assert_eq!(self.live, 0);
        self.base_seq = self.next_seq;
        self.dead.clear();
    }

    /// Schedules `event` to fire at `time`, returning a cancellation key.
    pub fn schedule(&mut self, time: SimTime, event: E) -> EventKey {
        if self.heap.is_empty() && self.base_seq != self.next_seq {
            self.compact();
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, event });
        self.live += 1;
        EventKey(seq)
    }

    /// Cancels a previously scheduled event.
    ///
    /// Returns `true` if the event had not yet fired or been cancelled;
    /// cancelling an already-fired event is a safe no-op. Cancellation is
    /// lazy: the entry is dropped when it reaches the front.
    pub fn cancel(&mut self, key: EventKey) -> bool {
        if key.0 >= self.next_seq || self.is_dead(key.0) {
            return false;
        }
        self.mark_dead(key.0);
        self.live -= 1;
        true
    }

    /// Removes and returns the earliest live event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(entry) = self.heap.pop() {
            if self.is_dead(entry.seq) {
                continue;
            }
            self.mark_dead(entry.seq);
            self.live -= 1;
            if self.heap.is_empty() {
                self.compact();
            }
            return Some((entry.time, entry.event));
        }
        self.compact();
        None
    }

    /// The timestamp of the earliest live event without removing it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        while let Some(entry) = self.heap.peek() {
            if self.is_dead(entry.seq) {
                self.heap.pop();
            } else {
                return Some(entry.time);
            }
        }
        None
    }

    /// Number of live (scheduled, not fired, not cancelled) events.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether there are no live events.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(t(3), 3);
        q.schedule(t(1), 1);
        q.schedule(t(2), 2);
        let out: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(t(7), i);
        }
        let out: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(out, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn cancel_removes_event() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), "a");
        q.schedule(t(2), "b");
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "double-cancel reports false");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().unwrap().1, "b");
        assert!(q.pop().is_none());
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), "a");
        q.schedule(t(5), "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(t(5)));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn empty_queue_behaviour() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
        assert_eq!(q.peek_time(), None);
        assert!(!q.cancel(EventKey(42)), "unknown key is a no-op");
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(t(1), 1);
        q.schedule(t(10), 10);
        assert_eq!(q.pop().unwrap().1, 1);
        q.schedule(t(5), 5);
        assert_eq!(q.pop().unwrap().1, 5);
        assert_eq!(q.pop().unwrap().1, 10);
    }

    #[test]
    fn tombstones_compact_across_drain_cycles() {
        let mut q = EventQueue::new();
        let mut stale = Vec::new();
        for cycle in 0..10u64 {
            let keep = q.schedule(t(cycle + 1), cycle);
            let drop = q.schedule(t(cycle + 2), cycle + 100);
            assert!(q.cancel(drop));
            stale.push(keep);
            assert_eq!(q.pop(), Some((t(cycle + 1), cycle)));
            assert!(q.is_empty(), "each cycle fully drains");
            assert_eq!(q.pop(), None, "draining discards the cancelled entry");
            assert_eq!(q.dead.len(), 0, "tombstones dropped once drained");
        }
        for key in stale {
            assert!(!q.cancel(key), "fired keys stay dead after compaction");
        }
        // Interleave a cancel with a live residual event across a cycle.
        let a = q.schedule(t(100), 1);
        q.schedule(t(101), 2);
        assert!(q.cancel(a));
        assert_eq!(q.peek_time(), Some(t(101)));
        assert_eq!(q.pop(), Some((t(101), 2)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn same_time_after_pop_still_fifo() {
        let mut q = EventQueue::new();
        let time = SimTime::ZERO + SimDuration::from_millis(1);
        q.schedule(time, 'x');
        assert_eq!(q.pop().unwrap().1, 'x');
        q.schedule(time, 'y');
        q.schedule(time, 'z');
        assert_eq!(q.pop().unwrap().1, 'y');
        assert_eq!(q.pop().unwrap().1, 'z');
    }
}
