//! Simulated time.
//!
//! Time is tracked in whole microseconds. A microsecond tick is fine enough
//! to resolve sub-millisecond network latencies while keeping arithmetic in
//! exact integers, which is essential for reproducible simulations: floating
//! point accumulation order must never change results.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant on the simulated clock, in microseconds since simulation start.
///
/// `SimTime` is totally ordered and starts at [`SimTime::ZERO`]. Subtracting
/// two instants yields a [`SimDuration`]; subtraction saturates at zero so a
/// stale timestamp can never panic the simulator.
///
/// # Example
///
/// ```
/// use simkit::{SimDuration, SimTime};
/// let t = SimTime::ZERO + SimDuration::from_millis(1500);
/// assert_eq!(t.as_micros(), 1_500_000);
/// assert_eq!(format!("{t}"), "1.500s");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in microseconds.
///
/// Supports scaling by integers and `f64` (rounding to the nearest
/// microsecond) so cost models can work in seconds and convert at the edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of simulated time.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as "never".
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Creates an instant from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Creates an instant from fractional seconds, rounding to microseconds.
    ///
    /// # Panics
    ///
    /// Panics if `s` is negative or not finite.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "invalid time: {s}");
        SimTime((s * 1e6).round() as u64)
    }

    /// This instant as whole microseconds since simulation start.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// This instant as fractional seconds since simulation start.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The duration elapsed since `earlier`, saturating to zero if `earlier`
    /// is actually later than `self`.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Adds `d`, saturating at [`SimTime::MAX`].
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable duration; used as "forever".
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Creates a duration from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Creates a duration from fractional seconds, rounding to microseconds.
    ///
    /// # Panics
    ///
    /// Panics if `s` is negative or not finite.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "invalid duration: {s}");
        SimDuration((s * 1e6).round() as u64)
    }

    /// This duration in whole microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// This duration in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Subtracts `other`, saturating at zero.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Multiplies by a non-negative float, rounding to microseconds.
    ///
    /// # Panics
    ///
    /// Panics if `k` is negative or not finite.
    pub fn mul_f64(self, k: f64) -> SimDuration {
        assert!(k.is_finite() && k >= 0.0, "invalid scale: {k}");
        SimDuration((self.0 as f64 * k).round() as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_add(rhs.0).expect("SimTime overflow"))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.saturating_since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_add(rhs.0).expect("SimDuration overflow"))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        self.saturating_sub(rhs)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.checked_mul(rhs).expect("SimDuration overflow"))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 1_000 {
            write!(f, "{}us", self.0)
        } else if self.0 < 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e3)
        } else {
            write!(f, "{:.3}s", self.as_secs_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimTime::from_secs(3).as_micros(), 3_000_000);
        assert_eq!(SimTime::from_secs_f64(0.5).as_micros(), 500_000);
        assert_eq!(SimDuration::from_millis(2).as_micros(), 2_000);
        assert_eq!(SimDuration::from_secs_f64(1.25).as_secs_f64(), 1.25);
    }

    #[test]
    fn time_arithmetic() {
        let t0 = SimTime::from_secs(10);
        let t1 = t0 + SimDuration::from_secs(5);
        assert_eq!(t1 - t0, SimDuration::from_secs(5));
        // Saturating: earlier - later == 0.
        assert_eq!(t0 - t1, SimDuration::ZERO);
        assert_eq!(t0.saturating_since(t1), SimDuration::ZERO);
    }

    #[test]
    fn duration_arithmetic() {
        let d = SimDuration::from_secs(2);
        assert_eq!(d * 3, SimDuration::from_secs(6));
        assert_eq!(d / 2, SimDuration::from_secs(1));
        assert_eq!(d.mul_f64(1.5), SimDuration::from_secs(3));
        assert_eq!(
            SimDuration::from_secs(1).saturating_sub(SimDuration::from_secs(2)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(format!("{}", SimDuration::from_micros(12)), "12us");
        assert_eq!(format!("{}", SimDuration::from_millis(12)), "12.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(12)), "12.000s");
        assert_eq!(format!("{}", SimTime::from_secs_f64(1.5)), "1.500s");
    }

    #[test]
    #[should_panic(expected = "invalid duration")]
    fn negative_duration_panics() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }

    #[test]
    fn saturating_add_caps_at_max() {
        assert_eq!(
            SimTime::MAX.saturating_add(SimDuration::from_secs(1)),
            SimTime::MAX
        );
    }
}
