//! Grace-period checkpoint triage: how much context to save before a kill.
//!
//! When a preemption notice arrives, the grace period is a *time budget*:
//! moving everything (weights on un-replicated shards plus the full KV
//! cache) may not fit before the kill lands, but moving *nothing* throws
//! away recoverable decoding progress. Triage grades the middle ground by
//! the **transferable-data fraction** — how much of the full checkpoint
//! the budget can actually move — and picks one of three tiers:
//!
//! | transferable fraction `f` | tier | what migrates |
//! |---------------------------|------|---------------|
//! | `f ≥ 0.8` | [`TriageTier::Full`] | everything: weights, full KV cache, carried requests |
//! | `0.3 ≤ f < 0.8` | [`TriageTier::Partial`] | weights plus the deepest `f` of the cache; shallow requests restart |
//! | `f < 0.3` | [`TriageTier::Restart`] | weights only; all in-flight context is abandoned |
//!
//! The fraction interpolates between the two plan costs the serving
//! system can already evaluate: `t_zero` (a weights-only plan, cache
//! zeroed) and `t_full` (the complete plan). Everything here is pure
//! arithmetic over those costs, which keeps the tier decision trivially
//! deterministic and property-testable; the serving system owns applying
//! the tier to a concrete [`MigrationTask`](crate::MigrationTask).

use simkit::SimDuration;

/// Below this transferable fraction, saving cache is not worth the grace
/// budget: restart from weights only.
pub const PARTIAL_THRESHOLD: f64 = 0.3;

/// At or above this transferable fraction, move everything: the budget
/// covers (nearly) the full checkpoint.
pub const FULL_THRESHOLD: f64 = 0.8;

/// The three checkpoint tiers, ordered by how much context survives
/// (`Restart < Partial < Full`), so "more budget never saves less" is an
/// ordinary `>=` between tiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TriageTier {
    /// Abandon all in-flight context; migrate weights only.
    Restart,
    /// Migrate weights plus a depth-ordered slice of the KV cache; the
    /// shallowest requests recompute instead.
    Partial,
    /// Migrate the complete checkpoint.
    Full,
}

impl TriageTier {
    /// The fraction of cache bytes this tier preserves, given the
    /// transferable fraction `f` it was graded from: all of it for
    /// [`TriageTier::Full`], `f` for [`TriageTier::Partial`], none for
    /// [`TriageTier::Restart`].
    pub fn cache_fraction(self, f: f64) -> f64 {
        match self {
            TriageTier::Full => 1.0,
            TriageTier::Partial => f.clamp(0.0, 1.0),
            TriageTier::Restart => 0.0,
        }
    }
}

/// The fraction of the *optional* checkpoint data (everything beyond the
/// weights-only plan) that `budget` can move: `1.0` when even the full
/// plan fits, `0.0` when not even the weights-only plan does, and the
/// linear interpolation `(budget - t_zero) / (t_full - t_zero)` between.
/// Degenerate inputs (`t_full <= t_zero`: cache adds no time) grade as
/// `1.0` whenever the weights-only plan fits — there is nothing to
/// ration.
pub fn transferable_fraction(budget: SimDuration, t_zero: SimDuration, t_full: SimDuration) -> f64 {
    if t_full <= budget {
        return 1.0;
    }
    if budget <= t_zero {
        return 0.0;
    }
    // t_zero < budget < t_full here, so the span is strictly positive.
    let span = t_full.as_secs_f64() - t_zero.as_secs_f64();
    let slack = budget.as_secs_f64() - t_zero.as_secs_f64();
    (slack / span).clamp(0.0, 1.0)
}

/// Grades a transferable fraction into a [`TriageTier`] by the
/// ≥ [`FULL_THRESHOLD`] / ≥ [`PARTIAL_THRESHOLD`] / below rule.
pub fn triage(fraction: f64) -> TriageTier {
    if fraction >= FULL_THRESHOLD {
        TriageTier::Full
    } else if fraction >= PARTIAL_THRESHOLD {
        TriageTier::Partial
    } else {
        TriageTier::Restart
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: f64) -> SimDuration {
        SimDuration::from_secs_f64(s)
    }

    #[test]
    fn fraction_interpolates_between_the_plan_costs() {
        assert_eq!(
            transferable_fraction(secs(30.0), secs(5.0), secs(25.0)),
            1.0
        );
        assert_eq!(transferable_fraction(secs(4.0), secs(5.0), secs(25.0)), 0.0);
        let mid = transferable_fraction(secs(15.0), secs(5.0), secs(25.0));
        assert!((mid - 0.5).abs() < 1e-12, "midpoint grades 0.5, got {mid}");
    }

    #[test]
    fn free_cache_grades_full_when_weights_fit() {
        // t_full == t_zero: the cache costs nothing extra.
        assert_eq!(transferable_fraction(secs(10.0), secs(5.0), secs(5.0)), 1.0);
        assert_eq!(transferable_fraction(secs(2.0), secs(5.0), secs(5.0)), 0.0);
    }

    #[test]
    fn tiers_follow_the_thresholds() {
        assert_eq!(triage(1.0), TriageTier::Full);
        assert_eq!(triage(0.8), TriageTier::Full);
        assert_eq!(triage(0.79), TriageTier::Partial);
        assert_eq!(triage(0.3), TriageTier::Partial);
        assert_eq!(triage(0.29), TriageTier::Restart);
        assert_eq!(triage(0.0), TriageTier::Restart);
    }

    #[test]
    fn tiers_order_by_context_saved() {
        assert!(TriageTier::Restart < TriageTier::Partial);
        assert!(TriageTier::Partial < TriageTier::Full);
    }

    #[test]
    fn cache_fraction_matches_the_tier() {
        assert_eq!(TriageTier::Full.cache_fraction(0.9), 1.0);
        assert_eq!(TriageTier::Partial.cache_fraction(0.5), 0.5);
        assert_eq!(TriageTier::Restart.cache_fraction(0.2), 0.0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]
        /// More grace budget never saves less: both the transferable
        /// fraction and the graded tier are monotone non-decreasing in
        /// the budget, for every plan-cost pair.
        #[test]
        fn triage_is_monotone_in_the_budget(
            t_zero_ms in 0u64..120_000,
            extra_ms in 0u64..300_000,
            budget_a_ms in 0u64..600_000,
            budget_b_ms in 0u64..600_000,
        ) {
            let t_zero = SimDuration::from_micros(t_zero_ms * 1000);
            let t_full = SimDuration::from_micros((t_zero_ms + extra_ms) * 1000);
            let (lo, hi) = if budget_a_ms <= budget_b_ms {
                (budget_a_ms, budget_b_ms)
            } else {
                (budget_b_ms, budget_a_ms)
            };
            let f_lo = transferable_fraction(
                SimDuration::from_micros(lo * 1000), t_zero, t_full);
            let f_hi = transferable_fraction(
                SimDuration::from_micros(hi * 1000), t_zero, t_full);
            prop_assert!((0.0..=1.0).contains(&f_lo));
            prop_assert!((0.0..=1.0).contains(&f_hi));
            prop_assert!(f_lo <= f_hi, "fraction fell: {f_lo} > {f_hi}");
            prop_assert!(
                triage(f_lo) <= triage(f_hi),
                "tier fell: {:?} > {:?}", triage(f_lo), triage(f_hi)
            );
        }

        /// The graded tier is monotone in the fraction itself, and the
        /// preserved cache fraction is monotone too.
        #[test]
        fn triage_is_monotone_in_the_fraction(
            a in 0u32..=1000,
            b in 0u32..=1000,
        ) {
            let (lo, hi) = (a.min(b) as f64 / 1000.0, a.max(b) as f64 / 1000.0);
            prop_assert!(triage(lo) <= triage(hi));
            prop_assert!(
                triage(lo).cache_fraction(lo) <= triage(hi).cache_fraction(hi) + 1e-12,
                "saved cache fell between f={lo} and f={hi}"
            );
        }
    }
}
