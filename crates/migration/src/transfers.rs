//! Deriving the exact byte flows of a reconfiguration.
//!
//! For every destination GPU and every layer, work out which interval of
//! the layer's shard space is missing (not already resident from the old
//! configuration), and source each missing piece from a surviving holder —
//! preferring a same-instance source, then balancing load — or from cold
//! storage when every replica was lost (§4.2 fault tolerance).

use std::collections::BTreeMap;

use cloudsim::GpuRef;
use parallelism::{stage_layers, MeshPosition};

use crate::task::MigrationTask;

/// Where a transferred piece of context comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransferSource {
    /// A surviving GPU that holds the bytes.
    Gpu(GpuRef),
    /// Persistent storage (S3/disk): only possible for weights.
    Storage,
}

/// One directed byte flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transfer {
    /// Source of the bytes.
    pub source: TransferSource,
    /// Receiving GPU.
    pub dest: GpuRef,
    /// Payload size.
    pub bytes: u64,
}

/// All transfers needed for one layer's weights.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayerTransfers {
    /// The layer index.
    pub layer: u32,
    /// The byte flows for this layer.
    pub transfers: Vec<Transfer>,
}

/// The complete byte-flow picture of a migration task.
#[derive(Debug, Clone)]
pub struct TransferSet {
    /// KV-cache moves (migrated first, before any weights).
    pub cache: Vec<Transfer>,
    /// Cache bytes that could not be preserved (source replica lost);
    /// the affected requests must recompute (§4.2).
    pub cache_lost_bytes: u64,
    /// Per-layer weight moves, indexed by layer.
    pub layers: Vec<LayerTransfers>,
    /// Per GPU and per layer: net resident-memory change when that layer
    /// migrates (incoming new bytes minus freed old bytes). Drives the
    /// memory-optimized ordering of Algorithm 2.
    pub layer_deltas: BTreeMap<GpuRef, Vec<i64>>,
}

impl TransferSet {
    /// Total bytes crossing the network (weights + cache).
    pub fn total_network_bytes(&self) -> u64 {
        let w: u64 = self
            .layers
            .iter()
            .flat_map(|l| &l.transfers)
            .filter(|t| matches!(t.source, TransferSource::Gpu(_)))
            .map(|t| t.bytes)
            .sum();
        let c: u64 = self.cache.iter().map(|t| t.bytes).sum();
        w + c
    }

    /// Total bytes loaded from persistent storage.
    pub fn total_storage_bytes(&self) -> u64 {
        self.layers
            .iter()
            .flat_map(|l| &l.transfers)
            .filter(|t| matches!(t.source, TransferSource::Storage))
            .map(|t| t.bytes)
            .sum()
    }
}

/// Exact rational interval arithmetic over a layer's shard space `[0, den)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Interval {
    lo: u64,
    hi: u64,
}

impl Interval {
    fn len(&self) -> u64 {
        self.hi.saturating_sub(self.lo)
    }

    fn intersect(&self, other: Interval) -> Interval {
        Interval {
            lo: self.lo.max(other.lo),
            hi: self.hi.min(other.hi),
        }
    }

    /// `self` minus `other`: up to two residual intervals.
    fn subtract(&self, other: Interval) -> Vec<Interval> {
        let inter = self.intersect(other);
        if inter.len() == 0 {
            return vec![*self];
        }
        let mut out = Vec::new();
        if self.lo < inter.lo {
            out.push(Interval {
                lo: self.lo,
                hi: inter.lo,
            });
        }
        if inter.hi < self.hi {
            out.push(Interval {
                lo: inter.hi,
                hi: self.hi,
            });
        }
        out
    }
}

/// Computes every byte flow implied by `task`.
///
/// Weight pieces with no surviving replica fall back to
/// [`TransferSource::Storage`]; lost cache pieces are tallied in
/// [`TransferSet::cache_lost_bytes`] (the whole inherited pipeline's cache
/// is counted lost if any piece of it is unrecoverable, since decoding
/// needs every layer's KV to resume).
pub fn compute_transfers(task: &MigrationTask) -> TransferSet {
    let model = &task.model;
    let layers_n = model.num_layers;
    let (m_old, m_new) = (task.old_config.tensor, task.new_config.tensor);
    let den = (m_old as u64) * (m_new as u64);
    let layer_bytes = model.layer_bytes();

    // Index the old assignment: (stage, shard) -> holders per pipeline.
    let old_cfg = task.old_config;
    let new_cfg = task.new_config;

    // Bytes each source GPU has been asked to send so far (load balancing).
    let mut send_load: BTreeMap<GpuRef, u64> = BTreeMap::new();
    let mut layer_deltas: BTreeMap<GpuRef, Vec<i64>> = BTreeMap::new();
    let mut delta = |g: GpuRef, layer: u32, amount: i64| {
        layer_deltas
            .entry(g)
            .or_insert_with(|| vec![0i64; layers_n as usize])[layer as usize] += amount;
    };

    // Which interval of `layer` does an old position hold?
    let old_interval = |pos: MeshPosition, layer: u32| -> Option<Interval> {
        let range = stage_layers(layers_n, old_cfg.pipeline, pos.stage);
        if !range.contains(&layer) {
            return None;
        }
        Some(Interval {
            lo: pos.shard as u64 * m_new as u64,
            hi: (pos.shard as u64 + 1) * m_new as u64,
        })
    };

    let piece_bytes = |iv: Interval, total: u64| -> u64 {
        ((iv.len() as u128 * total as u128) / den as u128) as u64
    };

    // ---- Weights ----------------------------------------------------
    let mut layer_xfers: Vec<LayerTransfers> = (0..layers_n)
        .map(|layer| LayerTransfers {
            layer,
            transfers: Vec::new(),
        })
        .collect();

    for (new_pos, dest) in task.new_assignment.iter() {
        let need_layers = stage_layers(layers_n, new_cfg.pipeline, new_pos.stage);
        let need_iv = Interval {
            lo: new_pos.shard as u64 * m_old as u64,
            hi: (new_pos.shard as u64 + 1) * m_old as u64,
        };
        let dest_old_pos = task.old_assignment.position_of(dest);
        for layer in need_layers.clone() {
            // What the destination already holds of this layer.
            let held = dest_old_pos.and_then(|p| old_interval(p, layer));
            let missing = match held {
                Some(h) => need_iv.subtract(h),
                None => vec![need_iv],
            };
            for miss in missing {
                if miss.len() == 0 {
                    continue;
                }
                // Split by old shard boundaries and source each piece.
                for k in 0..m_old {
                    let shard_iv = Interval {
                        lo: k as u64 * m_new as u64,
                        hi: (k as u64 + 1) * m_new as u64,
                    };
                    let piece = miss.intersect(shard_iv);
                    if piece.len() == 0 {
                        continue;
                    }
                    let bytes = piece_bytes(piece, layer_bytes);
                    if bytes == 0 {
                        continue;
                    }
                    // Candidate sources: any old pipeline's holder of
                    // (stage_of(layer), shard k) that is still assigned.
                    let stage = (0..old_cfg.pipeline)
                        .find(|&p| stage_layers(layers_n, old_cfg.pipeline, p).contains(&layer))
                        .expect("layer belongs to a stage");
                    let mut candidates: Vec<GpuRef> = (0..old_cfg.data)
                        .filter_map(|d| task.old_assignment.gpu_at(MeshPosition::new(d, stage, k)))
                        .filter(|g| *g != dest)
                        .collect();
                    // Prefer same-instance sources, then the least-loaded.
                    candidates.sort_by_key(|g| {
                        (
                            g.instance != dest.instance,
                            send_load.get(g).copied().unwrap_or(0),
                            *g,
                        )
                    });
                    let source = match candidates.first() {
                        Some(&g) => {
                            *send_load.entry(g).or_insert(0) += bytes;
                            TransferSource::Gpu(g)
                        }
                        None => TransferSource::Storage,
                    };
                    layer_xfers[layer as usize].transfers.push(Transfer {
                        source,
                        dest,
                        bytes,
                    });
                    delta(dest, layer, bytes as i64);
                }
            }
        }
    }

    // Freed bytes: every old holder releases the parts of each layer it
    // does not keep in its own new position.
    for (old_pos, gpu) in task.old_assignment.iter() {
        let held_layers = stage_layers(layers_n, old_cfg.pipeline, old_pos.stage);
        let held_iv = Interval {
            lo: old_pos.shard as u64 * m_new as u64,
            hi: (old_pos.shard as u64 + 1) * m_new as u64,
        };
        let new_pos = task.new_assignment.position_of(gpu);
        for layer in held_layers {
            let kept = new_pos
                .and_then(|np| {
                    let r = stage_layers(layers_n, new_cfg.pipeline, np.stage);
                    if !r.contains(&layer) {
                        return None;
                    }
                    Some(Interval {
                        lo: np.shard as u64 * m_old as u64,
                        hi: (np.shard as u64 + 1) * m_old as u64,
                    })
                })
                .map(|iv| held_iv.intersect(iv).len())
                .unwrap_or(0);
            let freed = held_iv.len() - kept;
            if freed > 0 {
                let bytes = ((freed as u128 * layer_bytes as u128) / den as u128) as i64;
                delta(gpu, layer, -bytes);
            }
        }
    }

    // ---- Cache ------------------------------------------------------
    let mut cache = Vec::new();
    let mut cache_lost = 0u64;
    for (d_new, inherit) in task.pipeline_inheritance.iter().enumerate() {
        let Some(d_old) = *inherit else { continue };
        let total = task
            .cache_bytes_per_pipeline
            .get(d_old as usize)
            .copied()
            .unwrap_or(0);
        if total == 0 {
            continue;
        }
        let per_layer = total / layers_n as u64;
        let mut lost = false;
        let mut pipeline_cache = Vec::new();
        for new_pos in new_cfg.positions().filter(|p| p.pipeline == d_new as u32) {
            let Some(dest) = task.new_assignment.gpu_at(new_pos) else {
                lost = true;
                continue;
            };
            let need_layers = stage_layers(layers_n, new_cfg.pipeline, new_pos.stage);
            let need_iv = Interval {
                lo: new_pos.shard as u64 * m_old as u64,
                hi: (new_pos.shard as u64 + 1) * m_old as u64,
            };
            let dest_old_pos = task
                .old_assignment
                .position_of(dest)
                .filter(|p| p.pipeline == d_old);
            for layer in need_layers {
                let held = dest_old_pos.and_then(|p| old_interval(p, layer));
                let missing = match held {
                    Some(h) => need_iv.subtract(h),
                    None => vec![need_iv],
                };
                for miss in missing {
                    for k in 0..m_old {
                        let shard_iv = Interval {
                            lo: k as u64 * m_new as u64,
                            hi: (k as u64 + 1) * m_new as u64,
                        };
                        let piece = miss.intersect(shard_iv);
                        if piece.len() == 0 {
                            continue;
                        }
                        let bytes = piece_bytes(piece, per_layer);
                        let stage = (0..old_cfg.pipeline)
                            .find(|&p| stage_layers(layers_n, old_cfg.pipeline, p).contains(&layer))
                            .expect("layer belongs to a stage");
                        // Cache exists only on the inherited pipeline.
                        match task
                            .old_assignment
                            .gpu_at(MeshPosition::new(d_old, stage, k))
                        {
                            Some(src) if src != dest => pipeline_cache.push(Transfer {
                                source: TransferSource::Gpu(src),
                                dest,
                                bytes,
                            }),
                            Some(_) => {} // already resident
                            None => lost = true,
                        }
                    }
                }
            }
        }
        if lost {
            // Decoding needs every layer's KV: a partial cache is useless.
            cache_lost += total;
        } else {
            cache.extend(pipeline_cache);
        }
    }

    TransferSet {
        cache,
        cache_lost_bytes: cache_lost,
        layers: layer_xfers,
        layer_deltas,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::DeviceAssignment;
    use cloudsim::InstanceId;
    use llmsim::ModelSpec;
    use parallelism::{ParallelConfig, PositionContext};

    fn gpu(i: u64, s: u8) -> GpuRef {
        GpuRef::new(InstanceId(i), s)
    }

    fn gpus(n: u64) -> Vec<GpuRef> {
        (0..n)
            .flat_map(|i| (0..4).map(move |s| gpu(i, s)))
            .collect()
    }

    /// Old (D=1,P=2,M=2) on 4 GPUs -> new (D=1,P=4,M=1) on the same 4 GPUs
    /// with the identity-ish mapping.
    fn simple_task() -> MigrationTask {
        let model = ModelSpec::opt_6_7b(); // 32 layers
        let old = ParallelConfig::new(1, 2, 2, 8);
        let new = ParallelConfig::new(1, 4, 1, 8);
        let g = gpus(1);
        MigrationTask {
            model,
            old_config: old,
            new_config: new,
            old_assignment: DeviceAssignment::contiguous(&old, &g),
            new_assignment: DeviceAssignment::contiguous(&new, &g),
            cache_bytes_per_pipeline: vec![0],
            pipeline_inheritance: vec![Some(0)],
        }
    }

    #[test]
    fn same_config_same_assignment_moves_nothing() {
        let model = ModelSpec::opt_6_7b();
        let cfg = ParallelConfig::new(1, 2, 2, 8);
        let g = gpus(1);
        let task = MigrationTask {
            model,
            old_config: cfg,
            new_config: cfg,
            old_assignment: DeviceAssignment::contiguous(&cfg, &g),
            new_assignment: DeviceAssignment::contiguous(&cfg, &g),
            cache_bytes_per_pipeline: vec![1 << 30],
            pipeline_inheritance: vec![Some(0)],
        };
        let t = compute_transfers(&task);
        assert_eq!(t.total_network_bytes(), 0);
        assert_eq!(t.total_storage_bytes(), 0);
        assert_eq!(t.cache_lost_bytes, 0);
    }

    #[test]
    fn fresh_start_loads_everything_from_storage() {
        let model = ModelSpec::opt_6_7b();
        let task = MigrationTask::fresh_start(
            &model,
            ParallelConfig::new(1, 1, 4, 8),
            &[(InstanceId(0), 4)],
        );
        let t = compute_transfers(&task);
        assert_eq!(t.total_network_bytes(), 0);
        // All layer weights (embeddings are not per-layer context).
        let expect = model.layer_bytes() * model.num_layers as u64;
        assert_eq!(t.total_storage_bytes(), expect);
    }

    #[test]
    fn reshard_moves_half_of_each_kept_layer() {
        // (P=2,M=2) -> (P=4,M=1): new stage 0 holds layers 0..8 full-width;
        // the GPU that held shard 0 of layers 0..16 must fetch the other
        // half of layers it keeps and everything of new layers.
        let t = compute_transfers(&simple_task());
        let total_weights: u64 = t
            .layers
            .iter()
            .flat_map(|l| &l.transfers)
            .map(|x| x.bytes)
            .sum();
        // Every byte of the model is needed somewhere; reuse means strictly
        // less than the full model moves.
        let model_bytes = ModelSpec::opt_6_7b().layer_bytes() * 32;
        assert!(total_weights > 0);
        assert!(
            total_weights < model_bytes,
            "{total_weights} vs {model_bytes}"
        );
        assert_eq!(t.total_storage_bytes(), 0, "all pieces have live sources");
    }

    #[test]
    fn deltas_balance_to_reconfiguration_difference() {
        // Sum of all per-layer deltas = (new resident bytes) - (old resident
        // bytes) summed over GPUs appearing in both assignments.
        let task = simple_task();
        let t = compute_transfers(&task);
        let sum: i64 = t.layer_deltas.values().flat_map(|v| v.iter()).sum();
        // Same GPUs, same model, full coverage both times: net change 0.
        assert_eq!(sum, 0);
    }

    #[test]
    fn cache_lost_when_source_pipeline_gone() {
        let mut task = simple_task();
        task.cache_bytes_per_pipeline = vec![1 << 20];
        // Remove one old holder: some cache pieces become unsourceable.
        task.old_assignment.remove_instance(InstanceId(0));
        let t = compute_transfers(&task);
        assert_eq!(t.cache_lost_bytes, 1 << 20);
    }

    #[test]
    fn cache_moves_when_sources_alive() {
        let mut task = simple_task();
        task.cache_bytes_per_pipeline = vec![32 << 20]; // 1 MiB per layer
        let t = compute_transfers(&task);
        assert_eq!(t.cache_lost_bytes, 0);
        let cache_bytes: u64 = t.cache.iter().map(|x| x.bytes).sum();
        assert!(cache_bytes > 0, "resharding must move some cache");
        assert!(cache_bytes <= 32 << 20);
    }

    #[test]
    fn byte_conservation_across_random_reconfigurations() {
        // Every byte a destination needs is either already resident or
        // arrives exactly once (network or storage): total inflow equals
        // total need minus total reuse, for a grid of reconfigurations.
        let model = ModelSpec::opt_6_7b();
        let configs = [
            ParallelConfig::new(1, 1, 4, 8),
            ParallelConfig::new(1, 2, 2, 8),
            ParallelConfig::new(2, 2, 2, 8),
            ParallelConfig::new(1, 4, 1, 8),
            ParallelConfig::new(2, 1, 2, 8),
        ];
        for old in configs {
            for new in configs {
                let total = old.total_gpus().max(new.total_gpus());
                let g = gpus(total.div_ceil(4) as u64);
                let task = MigrationTask {
                    model: model.clone(),
                    old_config: old,
                    new_config: new,
                    old_assignment: DeviceAssignment::contiguous(&old, &g),
                    new_assignment: DeviceAssignment::contiguous(&new, &g),
                    cache_bytes_per_pipeline: vec![0; old.data as usize],
                    pipeline_inheritance: vec![None; new.data as usize],
                };
                let t = compute_transfers(&task);
                let inflow: u64 = t
                    .layers
                    .iter()
                    .flat_map(|l| &l.transfers)
                    .map(|x| x.bytes)
                    .sum();
                // Total need: each of the `new` mesh's pipelines holds one
                // full copy of all layer weights.
                let need = model.layer_bytes() * model.num_layers as u64 * new.data as u64;
                // Total reuse: overlap of what each destination GPU held
                // with what it now needs.
                let reuse: u64 = task
                    .new_assignment
                    .iter()
                    .map(|(pos, gpu)| {
                        let new_ctx = PositionContext::new(
                            model.num_layers,
                            new.pipeline,
                            pos.stage,
                            new.tensor,
                            pos.shard,
                        );
                        task.old_assignment
                            .position_of(gpu)
                            .map(|op| {
                                let old_ctx = PositionContext::new(
                                    model.num_layers,
                                    old.pipeline,
                                    op.stage,
                                    old.tensor,
                                    op.shard,
                                );
                                old_ctx.weight_overlap_bytes(&new_ctx, model.layer_bytes())
                            })
                            .unwrap_or(0)
                    })
                    .sum();
                assert_eq!(
                    inflow + reuse,
                    need,
                    "{old} -> {new}: inflow {inflow} + reuse {reuse} != need {need}"
                );
            }
        }
    }

    #[test]
    fn sources_prefer_same_instance() {
        // Old (D=1,P=1,M=4) on instance 0; new (D=1,P=2,M=2) split across
        // instances 0 and 1. Fetches landing on instance 0 should source
        // from instance 0 GPUs.
        let model = ModelSpec::opt_6_7b();
        let old = ParallelConfig::new(1, 1, 4, 8);
        let new = ParallelConfig::new(1, 2, 2, 8);
        let old_g = gpus(1);
        let new_g: Vec<GpuRef> = vec![gpu(0, 0), gpu(0, 1), gpu(1, 0), gpu(1, 1)];
        let task = MigrationTask {
            model,
            old_config: old,
            new_config: new,
            old_assignment: DeviceAssignment::contiguous(&old, &old_g),
            new_assignment: DeviceAssignment::contiguous(&new, &new_g),
            cache_bytes_per_pipeline: vec![0],
            pipeline_inheritance: vec![Some(0)],
        };
        let t = compute_transfers(&task);
        for tr in t.layers.iter().flat_map(|l| &l.transfers) {
            if tr.dest.instance == InstanceId(0) {
                if let TransferSource::Gpu(src) = tr.source {
                    assert_eq!(src.instance, InstanceId(0), "{tr:?}");
                }
            }
        }
    }
}
