//! Evaluating a migration plan against the network and storage models.

use std::collections::BTreeMap;

use cloudsim::{ColdStorage, InstanceId, NetFabric};
use simkit::SimDuration;

use crate::planner::{MigrationPlan, PlanStep};
use crate::transfers::{Transfer, TransferSource};

/// When each part of the migration completes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MigrationTimeline {
    /// Offset at which the preserved cache is fully moved.
    pub cache_done: SimDuration,
    /// Offset at which each new-configuration stage may resume serving.
    pub stage_ready: Vec<SimDuration>,
    /// Offset at which every transfer has finished (`T_mig`).
    pub total: SimDuration,
    /// Bytes moved across the network.
    pub network_bytes: u64,
    /// Bytes loaded from storage.
    pub storage_bytes: u64,
}

impl MigrationTimeline {
    /// The effective serving pause of a *progressive* migration: the first
    /// batch can flow through stage `p` no earlier than `stage_ready[p]`,
    /// but reaches stage `p` only `p · stage_step` after entering the
    /// pipeline, so the pause is `max_p (ready_p − p·stage_step)` — the
    /// paper's "ideally ... reduced into the cost of a single stage's
    /// context transferring" (§3.4).
    pub fn effective_pause(&self, stage_step: SimDuration) -> SimDuration {
        self.stage_ready
            .iter()
            .enumerate()
            .map(|(p, &ready)| ready.saturating_sub(stage_step * p as u64))
            .max()
            .unwrap_or(self.total)
    }
}

/// Computes how long one batch of transfers takes: every instance moves its
/// in/out bytes over its NIC in parallel, intra-instance flows use the local
/// bus, and storage loads stream per instance concurrently with the network.
fn step_time(transfers: &[Transfer], net: &NetFabric, storage: &ColdStorage) -> SimDuration {
    if transfers.is_empty() {
        return SimDuration::ZERO;
    }
    let mut nic_out: BTreeMap<InstanceId, u64> = BTreeMap::new();
    let mut nic_in: BTreeMap<InstanceId, u64> = BTreeMap::new();
    let mut local: BTreeMap<InstanceId, u64> = BTreeMap::new();
    let mut storage_in: BTreeMap<InstanceId, u64> = BTreeMap::new();
    let mut any_inter = false;
    for t in transfers {
        match t.source {
            TransferSource::Gpu(src) if src.instance == t.dest.instance => {
                *local.entry(src.instance).or_insert(0) += t.bytes;
            }
            TransferSource::Gpu(src) => {
                any_inter = true;
                *nic_out.entry(src.instance).or_insert(0) += t.bytes;
                *nic_in.entry(t.dest.instance).or_insert(0) += t.bytes;
            }
            TransferSource::Storage => {
                *storage_in.entry(t.dest.instance).or_insert(0) += t.bytes;
            }
        }
    }
    let nic_secs = nic_out
        .values()
        .chain(nic_in.values())
        .map(|&b| b as f64 / net.inter_bw)
        .fold(0.0f64, f64::max);
    let local_secs = local
        .values()
        .map(|&b| b as f64 / net.intra_bw)
        .fold(0.0f64, f64::max);
    let storage_secs = storage_in
        .values()
        .map(|&b| b as f64 / storage.per_instance_bandwidth)
        .fold(0.0f64, f64::max);
    let latency = if any_inter {
        net.inter_latency
    } else if !local.is_empty() {
        net.intra_latency
    } else {
        SimDuration::ZERO
    };
    latency + SimDuration::from_secs_f64(nic_secs.max(local_secs).max(storage_secs))
}

/// Walks `plan` step by step and produces its timeline.
///
/// # Example
///
/// ```
/// use cloudsim::{ColdStorage, InstanceId, NetFabric};
/// use migration::{evaluate_plan, plan_migration, MigrationTask, PlannerOptions};
/// use parallelism::ParallelConfig;
///
/// let task = MigrationTask::fresh_start(
///     &llmsim::ModelSpec::opt_6_7b(),
///     ParallelConfig::new(1, 1, 4, 8),
///     &[(InstanceId(0), 4)],
/// );
/// let plan = plan_migration(&task, &PlannerOptions::default());
/// let tl = evaluate_plan(&plan, &NetFabric::g4dn_default(), &ColdStorage::default());
/// assert!(tl.total.as_secs_f64() > 10.0, "cold loads are slow: {}", tl.total);
/// ```
pub fn evaluate_plan(
    plan: &MigrationPlan,
    net: &NetFabric,
    storage: &ColdStorage,
) -> MigrationTimeline {
    let mut t = SimDuration::ZERO;
    let mut cache_done = SimDuration::ZERO;
    let mut stage_ready = vec![SimDuration::MAX; plan.new_stages as usize];
    for step in &plan.steps {
        match step {
            PlanStep::MigrateCache => {
                t += step_time(&plan.transfers.cache, net, storage);
                cache_done = t;
            }
            PlanStep::MigrateLayer(layer) => {
                let xfers = &plan.transfers.layers[*layer as usize].transfers;
                t += step_time(xfers, net, storage);
            }
            PlanStep::StartStage(p) => {
                stage_ready[*p as usize] = t;
            }
        }
    }
    for ready in &mut stage_ready {
        if *ready == SimDuration::MAX {
            *ready = t;
        }
    }
    MigrationTimeline {
        cache_done,
        stage_ready,
        total: t,
        network_bytes: plan.transfers.total_network_bytes(),
        storage_bytes: plan.transfers.total_storage_bytes(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::{plan_migration, PlannerOptions};
    use crate::task::{DeviceAssignment, MigrationTask};
    use cloudsim::GpuRef;
    use llmsim::ModelSpec;
    use parallelism::ParallelConfig;

    fn gpus(n: u64) -> Vec<GpuRef> {
        (0..n)
            .flat_map(|i| (0..4u8).map(move |s| GpuRef::new(InstanceId(i), s)))
            .collect()
    }

    fn net() -> NetFabric {
        NetFabric::g4dn_default()
    }

    fn storage() -> ColdStorage {
        ColdStorage::aws_default()
    }

    fn reconfig(old: ParallelConfig, new: ParallelConfig, n_inst: u64) -> MigrationTask {
        let g = gpus(n_inst);
        MigrationTask {
            model: ModelSpec::opt_6_7b(),
            old_config: old,
            new_config: new,
            old_assignment: DeviceAssignment::contiguous(&old, &g),
            new_assignment: DeviceAssignment::contiguous(&new, &g),
            cache_bytes_per_pipeline: vec![64 << 20; old.data as usize],
            pipeline_inheritance: (0..new.data).map(|d| (d < old.data).then_some(d)).collect(),
        }
    }

    #[test]
    fn context_migration_beats_cold_restart() {
        // The paper's core claim: migrating context over the network is far
        // cheaper than reloading weights from storage.
        let old = ParallelConfig::new(1, 2, 4, 8);
        let new = ParallelConfig::new(1, 4, 2, 8);
        let warm = plan_migration(&reconfig(old, new, 2), &PlannerOptions::default());
        let warm_t = evaluate_plan(&warm, &net(), &storage()).total;

        let cold_task = MigrationTask::fresh_start(
            &ModelSpec::opt_6_7b(),
            new,
            &[(InstanceId(0), 4), (InstanceId(1), 4)],
        );
        let cold = plan_migration(&cold_task, &PlannerOptions::default());
        let cold_t = evaluate_plan(&cold, &net(), &storage()).total;
        assert!(
            warm_t.as_secs_f64() * 2.0 < cold_t.as_secs_f64(),
            "warm {warm_t} vs cold {cold_t}"
        );
    }

    #[test]
    fn stage_ready_is_monotone_with_plan_position() {
        let old = ParallelConfig::new(1, 2, 2, 8);
        let new = ParallelConfig::new(1, 4, 1, 8);
        let plan = plan_migration(&reconfig(old, new, 1), &PlannerOptions::default());
        let tl = evaluate_plan(&plan, &net(), &storage());
        assert_eq!(tl.stage_ready.len(), 4);
        for &r in &tl.stage_ready {
            assert!(r <= tl.total);
        }
        // At least one stage becomes ready strictly before the end.
        assert!(tl.stage_ready.iter().any(|&r| r < tl.total));
    }

    #[test]
    fn effective_pause_bounded_by_total() {
        let old = ParallelConfig::new(1, 2, 2, 8);
        let new = ParallelConfig::new(1, 4, 1, 8);
        let plan = plan_migration(&reconfig(old, new, 1), &PlannerOptions::default());
        let tl = evaluate_plan(&plan, &net(), &storage());
        let pause = tl.effective_pause(SimDuration::from_millis(500));
        assert!(pause <= tl.total);
        // Progressive overlap must actually help vs waiting for everything.
        assert!(pause < tl.total);
    }

    #[test]
    fn non_progressive_pause_equals_total() {
        let old = ParallelConfig::new(1, 2, 2, 8);
        let new = ParallelConfig::new(1, 4, 1, 8);
        let plan = plan_migration(
            &reconfig(old, new, 1),
            &PlannerOptions {
                progressive: false,
                ..PlannerOptions::default()
            },
        );
        let tl = evaluate_plan(&plan, &net(), &storage());
        assert_eq!(tl.effective_pause(SimDuration::from_secs(1)), tl.total);
    }

    #[test]
    fn cache_first_in_timeline() {
        let old = ParallelConfig::new(1, 2, 2, 8);
        let new = ParallelConfig::new(1, 4, 1, 8);
        let plan = plan_migration(&reconfig(old, new, 1), &PlannerOptions::default());
        let tl = evaluate_plan(&plan, &net(), &storage());
        assert!(tl.cache_done > SimDuration::ZERO, "cache moved");
        assert!(tl.cache_done < tl.total);
    }

    #[test]
    fn empty_plan_is_instant() {
        let cfg = ParallelConfig::new(1, 2, 2, 8);
        let mut task = reconfig(cfg, cfg, 1);
        task.cache_bytes_per_pipeline = vec![0];
        let plan = plan_migration(&task, &PlannerOptions::default());
        let tl = evaluate_plan(&plan, &net(), &storage());
        assert_eq!(tl.total, SimDuration::ZERO);
        assert_eq!(tl.effective_pause(SimDuration::ZERO), SimDuration::ZERO);
    }
}
