//! Description of one reconfiguration task.

use std::collections::BTreeMap;

use cloudsim::{GpuRef, InstanceId};
use llmsim::ModelSpec;
use parallelism::{MeshPosition, ParallelConfig};

/// A mapping from mesh positions to physical GPUs.
///
/// # Example
///
/// ```
/// use cloudsim::{GpuRef, InstanceId};
/// use migration::DeviceAssignment;
/// use parallelism::{MeshPosition, ParallelConfig};
///
/// let cfg = ParallelConfig::new(1, 1, 4, 8);
/// let gpus: Vec<GpuRef> = (0..4).map(|s| GpuRef::new(InstanceId(0), s)).collect();
/// let asg = DeviceAssignment::contiguous(&cfg, &gpus);
/// assert_eq!(asg.gpu_at(MeshPosition::new(0, 0, 2)), Some(gpus[2]));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DeviceAssignment {
    map: BTreeMap<MeshPosition, GpuRef>,
}

impl DeviceAssignment {
    /// An empty assignment.
    pub fn new() -> Self {
        DeviceAssignment::default()
    }

    /// Assigns the mesh positions of `cfg` to `gpus` in canonical order.
    ///
    /// # Panics
    ///
    /// Panics if fewer GPUs are supplied than the mesh has positions.
    pub fn contiguous(cfg: &ParallelConfig, gpus: &[GpuRef]) -> Self {
        assert!(
            gpus.len() >= cfg.total_gpus() as usize,
            "need {} GPUs, got {}",
            cfg.total_gpus(),
            gpus.len()
        );
        let mut map = BTreeMap::new();
        for (pos, gpu) in cfg.positions().zip(gpus) {
            map.insert(pos, *gpu);
        }
        DeviceAssignment { map }
    }

    /// Binds `pos` to `gpu`, replacing any previous binding of `pos`.
    pub fn insert(&mut self, pos: MeshPosition, gpu: GpuRef) {
        self.map.insert(pos, gpu);
    }

    /// The GPU at `pos`, if assigned.
    pub fn gpu_at(&self, pos: MeshPosition) -> Option<GpuRef> {
        self.map.get(&pos).copied()
    }

    /// The position held by `gpu`, if any.
    pub fn position_of(&self, gpu: GpuRef) -> Option<MeshPosition> {
        self.map
            .iter()
            .find(|&(_, g)| *g == gpu)
            .map(|(pos, _)| *pos)
    }

    /// All `(position, gpu)` bindings in position order.
    pub fn iter(&self) -> impl Iterator<Item = (MeshPosition, GpuRef)> + '_ {
        self.map.iter().map(|(p, g)| (*p, *g))
    }

    /// Number of bound positions.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no positions are bound.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Removes every binding whose GPU lives on `instance` (used when an
    /// instance is preempted before migration finishes).
    pub fn remove_instance(&mut self, instance: InstanceId) {
        self.map.retain(|_, g| g.instance != instance);
    }

    /// Removes every binding of data-parallel pipeline `d` (used when a
    /// single pipeline is torn down, e.g. by the Rerouting baseline).
    pub fn remove_pipeline(&mut self, d: u32) {
        self.map.retain(|pos, _| pos.pipeline != d);
    }

    /// Distinct instances participating in this assignment.
    pub fn instances(&self) -> Vec<InstanceId> {
        let mut out: Vec<InstanceId> = self.map.values().map(|g| g.instance).collect();
        out.sort_unstable();
        out.dedup();
        out
    }
}

impl FromIterator<(MeshPosition, GpuRef)> for DeviceAssignment {
    fn from_iter<I: IntoIterator<Item = (MeshPosition, GpuRef)>>(iter: I) -> Self {
        DeviceAssignment {
            map: iter.into_iter().collect(),
        }
    }
}

/// Everything the planner needs to know about one reconfiguration.
#[derive(Debug, Clone)]
pub struct MigrationTask {
    /// The model being served.
    pub model: ModelSpec,
    /// The configuration the fleet is leaving.
    pub old_config: ParallelConfig,
    /// The configuration the fleet is entering.
    pub new_config: ParallelConfig,
    /// Where each *surviving* old position physically lives. GPUs on
    /// preempted-and-gone instances must not appear here.
    pub old_assignment: DeviceAssignment,
    /// The target placement (output of the device mapper).
    pub new_assignment: DeviceAssignment,
    /// Committed KV-cache bytes per old pipeline (whole-pipeline total).
    pub cache_bytes_per_pipeline: Vec<u64>,
    /// For each new pipeline `d'`, the old pipeline whose in-flight
    /// requests (and hence cache) it inherits, if any.
    pub pipeline_inheritance: Vec<Option<u32>>,
}

impl MigrationTask {
    /// A task describing a cold start: nothing survives, every byte of the
    /// target configuration loads from storage. `fleet` lists
    /// `(instance, gpus)` to fill contiguously.
    pub fn fresh_start(
        model: &ModelSpec,
        new_config: ParallelConfig,
        fleet: &[(InstanceId, u8)],
    ) -> Self {
        let gpus: Vec<GpuRef> = fleet
            .iter()
            .flat_map(|&(id, n)| (0..n).map(move |s| GpuRef::new(id, s)))
            .collect();
        MigrationTask {
            model: model.clone(),
            old_config: new_config,
            new_config,
            old_assignment: DeviceAssignment::new(),
            new_assignment: DeviceAssignment::contiguous(&new_config, &gpus),
            cache_bytes_per_pipeline: Vec::new(),
            pipeline_inheritance: vec![None; new_config.data as usize],
        }
    }

    /// Total committed cache bytes that should survive the migration
    /// (summed over inherited pipelines only).
    pub fn inherited_cache_bytes(&self) -> u64 {
        self.pipeline_inheritance
            .iter()
            .flatten()
            .filter_map(|&d| self.cache_bytes_per_pipeline.get(d as usize))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gpu(i: u64, s: u8) -> GpuRef {
        GpuRef::new(InstanceId(i), s)
    }

    #[test]
    fn contiguous_assignment_in_position_order() {
        let cfg = ParallelConfig::new(1, 2, 2, 1);
        let gpus: Vec<GpuRef> = (0..2)
            .flat_map(|i| (0..2).map(move |s| gpu(i, s)))
            .collect();
        let asg = DeviceAssignment::contiguous(&cfg, &gpus);
        assert_eq!(asg.len(), 4);
        // Stage 0 on instance 0, stage 1 on instance 1.
        assert_eq!(asg.gpu_at(MeshPosition::new(0, 0, 0)), Some(gpu(0, 0)));
        assert_eq!(asg.gpu_at(MeshPosition::new(0, 1, 1)), Some(gpu(1, 1)));
    }

    #[test]
    #[should_panic(expected = "need 4 GPUs")]
    fn too_few_gpus_panics() {
        let cfg = ParallelConfig::new(1, 2, 2, 1);
        DeviceAssignment::contiguous(&cfg, &[gpu(0, 0)]);
    }

    #[test]
    fn remove_instance_drops_bindings() {
        let cfg = ParallelConfig::new(1, 2, 2, 1);
        let gpus: Vec<GpuRef> = (0..2)
            .flat_map(|i| (0..2).map(move |s| gpu(i, s)))
            .collect();
        let mut asg = DeviceAssignment::contiguous(&cfg, &gpus);
        asg.remove_instance(InstanceId(0));
        assert_eq!(asg.len(), 2);
        assert_eq!(asg.instances(), vec![InstanceId(1)]);
    }

    #[test]
    fn position_of_reverse_lookup() {
        let cfg = ParallelConfig::new(2, 1, 1, 1);
        let asg = DeviceAssignment::contiguous(&cfg, &[gpu(5, 0), gpu(6, 0)]);
        assert_eq!(asg.position_of(gpu(6, 0)), Some(MeshPosition::new(1, 0, 0)));
        assert_eq!(asg.position_of(gpu(9, 0)), None);
    }

    #[test]
    fn fresh_start_has_no_reuse() {
        let task = MigrationTask::fresh_start(
            &ModelSpec::opt_6_7b(),
            ParallelConfig::new(1, 1, 4, 8),
            &[(InstanceId(0), 4)],
        );
        assert!(task.old_assignment.is_empty());
        assert_eq!(task.inherited_cache_bytes(), 0);
    }

    #[test]
    fn inherited_cache_sums_only_inherited() {
        let mut task = MigrationTask::fresh_start(
            &ModelSpec::opt_6_7b(),
            ParallelConfig::new(2, 1, 2, 8),
            &[(InstanceId(0), 4)],
        );
        task.cache_bytes_per_pipeline = vec![100, 200];
        task.pipeline_inheritance = vec![Some(1), None];
        assert_eq!(task.inherited_cache_bytes(), 200);
    }
}
