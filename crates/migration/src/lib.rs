//! Context migration: what must move when the parallel configuration
//! changes, in which order, and how long it takes.
//!
//! This crate implements the paper's migration planner (§3.4, Algorithm 2):
//!
//! * [`task`] describes a reconfiguration: the old device assignment with
//!   whatever context each GPU still holds, the target assignment, and the
//!   committed KV-cache state to preserve;
//! * [`transfers`] derives the exact byte flows — for every destination GPU
//!   and layer, which source GPU (or cold storage, when every replica of a
//!   shard was lost) supplies the missing pieces;
//! * [`planner`] orders the layer migrations: cache context first (for
//!   interruption fault-tolerance), then weights in the memory-optimized
//!   order of `MemOptMigPlanner`, emitting progressive `StartStage` markers
//!   so front pipeline stages resume serving while the tail still migrates;
//! * [`cost`] evaluates a plan against the network model, yielding per-stage
//!   ready times, the total migration time `T_mig`, and the peak
//!   communication-buffer growth per GPU.
//!
//! # Example
//!
//! ```
//! use migration::{plan_migration, MigrationTask, PlannerOptions};
//! use parallelism::ParallelConfig;
//!
//! let task = MigrationTask::fresh_start(
//!     &llmsim::ModelSpec::opt_6_7b(),
//!     ParallelConfig::new(1, 2, 2, 8),
//!     &[(cloudsim::InstanceId(0), 4)],
//! );
//! let plan = plan_migration(&task, &PlannerOptions::default());
//! // A fresh start has no reusable context: everything loads from storage.
//! assert!(plan.total_bytes_from_storage() > 0);
//! ```

pub mod cost;
pub mod planner;
pub mod task;
pub mod transfers;
pub mod triage;

pub use cost::{evaluate_plan, MigrationTimeline};
pub use planner::{plan_migration, MigrationPlan, PlanStep, PlannerOptions};
pub use task::{DeviceAssignment, MigrationTask};
pub use transfers::{LayerTransfers, Transfer, TransferSource};
pub use triage::{transferable_fraction, triage, TriageTier, FULL_THRESHOLD, PARTIAL_THRESHOLD};
