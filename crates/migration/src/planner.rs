//! Algorithm 2: the progressive, memory-optimized migration planner.

use std::collections::BTreeSet;

use cloudsim::GpuRef;
use parallelism::stage_layers;

use crate::task::MigrationTask;
use crate::transfers::{compute_transfers, TransferSet};

/// Planner knobs (the §6.2 ablations toggle these).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlannerOptions {
    /// Maximum allowed growth of any GPU's resident memory during the
    /// migration (`U_max` of Algorithm 2).
    pub u_max: u64,
    /// Use the memory-optimized layer ordering (`MemOptMigPlanner`).
    /// When false, layers migrate in index order regardless of buffers.
    pub memory_optimized: bool,
    /// Emit `StartStage` markers as soon as a stage's context is complete
    /// (progressive migration). When false, stages start only after the
    /// whole migration.
    pub progressive: bool,
}

impl Default for PlannerOptions {
    fn default() -> Self {
        PlannerOptions {
            u_max: 512 << 20,
            memory_optimized: true,
            progressive: true,
        }
    }
}

/// One step of the migration plan, in execution order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanStep {
    /// Move all preserved KV-cache context (always first: losing weights
    /// costs a reload, losing cache costs recomputation of live requests).
    MigrateCache,
    /// Move one layer's weight pieces.
    MigrateLayer(u32),
    /// All context of new-configuration stage `p` is resident: its
    /// instances may resume serving (progressive migration overlap).
    StartStage(u32),
}

/// An ordered migration plan plus its memory footprint.
#[derive(Debug, Clone)]
pub struct MigrationPlan {
    /// Steps in execution order.
    pub steps: Vec<PlanStep>,
    /// The layer order chosen by the planner.
    pub layer_order: Vec<u32>,
    /// The underlying byte flows.
    pub transfers: TransferSet,
    /// Largest growth of any GPU's resident memory at any point of the
    /// plan, relative to its starting point.
    pub peak_buffer_growth: u64,
    /// New-configuration pipeline depth (for consumers of `StartStage`).
    pub new_stages: u32,
}

impl MigrationPlan {
    /// Total bytes crossing the network.
    pub fn total_bytes_network(&self) -> u64 {
        self.transfers.total_network_bytes()
    }

    /// Total bytes loaded from storage.
    pub fn total_bytes_from_storage(&self) -> u64 {
        self.transfers.total_storage_bytes()
    }

    /// Whether the plan respects `u_max` on every GPU.
    pub fn respects_buffer_limit(&self, u_max: u64) -> bool {
        self.peak_buffer_growth <= u_max
    }
}

/// Runs Algorithm 2 on `task`.
///
/// The returned plan starts with [`PlanStep::MigrateCache`], then migrates
/// layers in the chosen order, emitting [`PlanStep::StartStage`] markers as
/// stages complete (progressively, or all at the end when
/// [`PlannerOptions::progressive`] is off).
pub fn plan_migration(task: &MigrationTask, opts: &PlannerOptions) -> MigrationPlan {
    let transfers = compute_transfers(task);
    let layers_n = task.model.num_layers;

    let layer_order = if opts.memory_optimized {
        memopt_order(&transfers, layers_n, opts.u_max)
    } else {
        (0..layers_n).collect()
    };

    // Walk the order, tracking per-GPU buffer growth and stage completion.
    let mut usage: std::collections::BTreeMap<GpuRef, i64> = std::collections::BTreeMap::new();
    let mut peak = 0i64;
    let mut steps = vec![PlanStep::MigrateCache];
    let mut remaining_per_stage: Vec<BTreeSet<u32>> = (0..task.new_config.pipeline)
        .map(|p| stage_layers(layers_n, task.new_config.pipeline, p).collect::<BTreeSet<u32>>())
        .collect();
    let mut started = vec![false; task.new_config.pipeline as usize];

    for &layer in &layer_order {
        steps.push(PlanStep::MigrateLayer(layer));
        for (gpu, deltas) in &transfers.layer_deltas {
            let u = usage.entry(*gpu).or_insert(0);
            *u += deltas[layer as usize];
            peak = peak.max(*u);
        }
        if opts.progressive {
            for (p, remaining) in remaining_per_stage.iter_mut().enumerate() {
                remaining.remove(&layer);
                if remaining.is_empty() && !started[p] {
                    started[p] = true;
                    steps.push(PlanStep::StartStage(p as u32));
                }
            }
        }
    }
    if !opts.progressive {
        for p in 0..task.new_config.pipeline {
            steps.push(PlanStep::StartStage(p));
        }
    }

    MigrationPlan {
        steps,
        layer_order,
        transfers,
        peak_buffer_growth: peak.max(0) as u64,
        new_stages: task.new_config.pipeline,
    }
}

/// `MemOptMigPlanner` of Algorithm 2: first admit, in index order, the
/// layers whose migration keeps every GPU's buffer growth under `u_max`;
/// then append the deferred layers greedily, each time picking the layer
/// minimizing the resulting maximum buffer usage.
fn memopt_order(transfers: &TransferSet, layers_n: u32, u_max: u64) -> Vec<u32> {
    let mut usage: std::collections::BTreeMap<GpuRef, i64> = std::collections::BTreeMap::new();
    let mut order = Vec::with_capacity(layers_n as usize);
    let mut deferred: Vec<u32> = Vec::new();

    let would_peak =
        |usage: &std::collections::BTreeMap<GpuRef, i64>, transfers: &TransferSet, layer: u32| {
            transfers
                .layer_deltas
                .iter()
                .map(|(g, d)| usage.get(g).copied().unwrap_or(0) + d[layer as usize])
                .max()
                .unwrap_or(0)
        };
    let apply = |usage: &mut std::collections::BTreeMap<GpuRef, i64>,
                 transfers: &TransferSet,
                 layer: u32| {
        for (g, d) in &transfers.layer_deltas {
            *usage.entry(*g).or_insert(0) += d[layer as usize];
        }
    };

    for layer in 0..layers_n {
        if would_peak(&usage, transfers, layer) <= u_max as i64 {
            apply(&mut usage, transfers, layer);
            order.push(layer);
        } else {
            deferred.push(layer);
        }
    }
    // Greedy min-max completion (Algorithm 2, lines 18-21).
    while !deferred.is_empty() {
        let (idx, _) = deferred
            .iter()
            .enumerate()
            .min_by_key(|&(_, &l)| would_peak(&usage, transfers, l))
            .expect("non-empty");
        let layer = deferred.remove(idx);
        apply(&mut usage, transfers, layer);
        order.push(layer);
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::DeviceAssignment;
    use cloudsim::InstanceId;
    use llmsim::ModelSpec;
    use parallelism::ParallelConfig;

    fn gpus(n: u64) -> Vec<GpuRef> {
        (0..n)
            .flat_map(|i| (0..4u8).map(move |s| GpuRef::new(InstanceId(i), s)))
            .collect()
    }

    fn reconfig_task(old: ParallelConfig, new: ParallelConfig, n_inst: u64) -> MigrationTask {
        let g = gpus(n_inst);
        MigrationTask {
            model: ModelSpec::opt_6_7b(),
            old_config: old,
            new_config: new,
            old_assignment: DeviceAssignment::contiguous(&old, &g),
            new_assignment: DeviceAssignment::contiguous(&new, &g),
            cache_bytes_per_pipeline: vec![64 << 20; old.data as usize],
            pipeline_inheritance: (0..new.data).map(|d| (d < old.data).then_some(d)).collect(),
        }
    }

    #[test]
    fn plan_contains_every_layer_exactly_once() {
        let task = reconfig_task(
            ParallelConfig::new(1, 2, 2, 8),
            ParallelConfig::new(1, 4, 1, 8),
            1,
        );
        let plan = plan_migration(&task, &PlannerOptions::default());
        let mut layers: Vec<u32> = plan.layer_order.clone();
        layers.sort_unstable();
        assert_eq!(layers, (0..32).collect::<Vec<u32>>());
        assert_eq!(plan.steps[0], PlanStep::MigrateCache);
    }

    #[test]
    fn progressive_plan_starts_all_stages() {
        let task = reconfig_task(
            ParallelConfig::new(1, 2, 2, 8),
            ParallelConfig::new(1, 4, 1, 8),
            1,
        );
        let plan = plan_migration(&task, &PlannerOptions::default());
        let starts: Vec<u32> = plan
            .steps
            .iter()
            .filter_map(|s| match s {
                PlanStep::StartStage(p) => Some(*p),
                _ => None,
            })
            .collect();
        let mut sorted = starts.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3]);
    }

    #[test]
    fn progressive_starts_before_migration_ends() {
        let task = reconfig_task(
            ParallelConfig::new(1, 2, 2, 8),
            ParallelConfig::new(1, 4, 1, 8),
            1,
        );
        let plan = plan_migration(&task, &PlannerOptions::default());
        let first_start = plan
            .steps
            .iter()
            .position(|s| matches!(s, PlanStep::StartStage(_)))
            .unwrap();
        assert!(
            first_start < plan.steps.len() - 1,
            "a stage must start before the last step"
        );

        let non_prog = plan_migration(
            &task,
            &PlannerOptions {
                progressive: false,
                ..PlannerOptions::default()
            },
        );
        let first_np = non_prog
            .steps
            .iter()
            .position(|s| matches!(s, PlanStep::StartStage(_)))
            .unwrap();
        assert_eq!(
            first_np,
            non_prog.steps.len() - task.new_config.pipeline as usize,
            "non-progressive starts everything at the end"
        );
    }

    #[test]
    fn memopt_respects_buffer_limit_when_naive_does_not() {
        // Shrink 2 pipelines to 1 on fewer GPUs: heavy inflow to survivors.
        let old = ParallelConfig::new(1, 1, 4, 8);
        let new = ParallelConfig::new(1, 2, 2, 8);
        let old_g = gpus(1);
        // New assignment deliberately reuses only two old GPUs and adds two
        // fresh ones, creating asymmetric inflows.
        let new_g = vec![
            GpuRef::new(InstanceId(0), 0),
            GpuRef::new(InstanceId(1), 0),
            GpuRef::new(InstanceId(0), 1),
            GpuRef::new(InstanceId(1), 1),
        ];
        let task = MigrationTask {
            model: ModelSpec::opt_6_7b(),
            old_config: old,
            new_config: new,
            old_assignment: DeviceAssignment::contiguous(&old, &old_g),
            new_assignment: DeviceAssignment::contiguous(&new, &new_g),
            cache_bytes_per_pipeline: vec![0],
            pipeline_inheritance: vec![Some(0)],
        };
        let naive = plan_migration(
            &task,
            &PlannerOptions {
                memory_optimized: false,
                ..PlannerOptions::default()
            },
        );
        let opt = plan_migration(&task, &PlannerOptions::default());
        assert!(
            opt.peak_buffer_growth <= naive.peak_buffer_growth,
            "memopt {} vs naive {}",
            opt.peak_buffer_growth,
            naive.peak_buffer_growth
        );
    }

    #[test]
    fn same_config_plan_is_cheap() {
        let cfg = ParallelConfig::new(1, 2, 2, 8);
        let task = reconfig_task(cfg, cfg, 1);
        let plan = plan_migration(&task, &PlannerOptions::default());
        assert_eq!(plan.total_bytes_network(), 0);
        assert_eq!(plan.peak_buffer_growth, 0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::task::DeviceAssignment;
    use cloudsim::InstanceId;
    use llmsim::ModelSpec;
    use parallelism::ParallelConfig;
    use proptest::prelude::*;

    fn config_strategy() -> impl Strategy<Value = ParallelConfig> {
        (1u32..=2, 1u32..=4, prop::sample::select(vec![1u32, 2, 4]))
            .prop_map(|(d, p, m)| ParallelConfig::new(d, p, m, 8))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn plans_are_complete_and_deterministic(
            old in config_strategy(),
            new in config_strategy(),
        ) {
            let total = old.total_gpus().max(new.total_gpus());
            let gpus: Vec<GpuRef> = (0..total.div_ceil(4) as u64)
                .flat_map(|i| (0..4u8).map(move |s| GpuRef::new(InstanceId(i), s)))
                .collect();
            let task = MigrationTask {
                model: ModelSpec::opt_6_7b(),
                old_config: old,
                new_config: new,
                old_assignment: DeviceAssignment::contiguous(&old, &gpus),
                new_assignment: DeviceAssignment::contiguous(&new, &gpus),
                cache_bytes_per_pipeline: vec![32 << 20; old.data as usize],
                pipeline_inheritance: (0..new.data)
                    .map(|d| (d < old.data).then_some(d))
                    .collect(),
            };
            let a = plan_migration(&task, &PlannerOptions::default());
            let b = plan_migration(&task, &PlannerOptions::default());
            prop_assert_eq!(a.layer_order.clone(), b.layer_order.clone());
            let mut layers = a.layer_order.clone();
            layers.sort_unstable();
            prop_assert_eq!(layers, (0..32).collect::<Vec<u32>>());
            // Every stage starts exactly once.
            let starts = a.steps.iter().filter(|s| matches!(s, PlanStep::StartStage(_))).count();
            prop_assert_eq!(starts, new.pipeline as usize);
        }
    }
}
