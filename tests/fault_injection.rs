//! Fault-injection scenarios for §4.2's interruption fault tolerance:
//! overlapping grace periods, capacity collapses, churn storms, recovery
//! from total outage, preemption landing mid-chunked-prefill — and the
//! chaos harness on top: unannounced kills, lost preemption notices,
//! lapsed grants with backoff recovery, and randomized fault plans that
//! must never violate the run-level invariant auditor.

use cloudsim::{AvailabilityTrace, FaultSpec, PoolSpec};
use llmsim::ModelSpec;
use proptest::prelude::*;
use simkit::{SimDuration, SimRng, SimTime};
use spotserve::{FleetPolicy, Scenario, ServingSystem, SystemOptions};
use workload::{LengthDist, WorkloadSpec};

mod common;
use common::assert_audit_clean;

fn short_scenario(trace: AvailabilityTrace, model: ModelSpec, rate: f64, seed: u64) -> Scenario {
    let mut s = Scenario::paper_stable(model, trace, rate, seed);
    s.requests.retain(|r| r.arrival < SimTime::from_secs(600));
    s
}

/// Two preemption notices landing 10 s apart: their grace periods overlap,
/// so the second arrives while the first migration is being arranged.
#[test]
fn overlapping_grace_periods_are_survived() {
    let trace = AvailabilityTrace::from_steps(vec![
        (SimTime::ZERO, 8),
        (SimTime::from_secs(100), 7),
        (SimTime::from_secs(110), 6),
        (SimTime::from_secs(120), 5),
    ]);
    let scenario = short_scenario(trace, ModelSpec::gpt_20b(), 0.35, 3);
    let total = scenario.requests.len();
    let report = ServingSystem::new(SystemOptions::spotserve(), scenario).run();
    assert_eq!(report.latency.outcomes().len() + report.unfinished, total);
    assert_eq!(report.unfinished, 0, "all requests must eventually finish");
    assert!(report.preemptions >= 3);
    assert_audit_clean(&report, total);
}

/// The fleet collapses below the model's minimum and recovers: serving
/// halts, context is preserved where possible, and the system resumes.
#[test]
fn total_outage_and_recovery() {
    let trace = AvailabilityTrace::from_steps(vec![
        (SimTime::ZERO, 6),
        (SimTime::from_secs(120), 2), // below GPT-20B's 3-instance minimum
        (SimTime::from_secs(300), 6),
    ]);
    let scenario = short_scenario(trace, ModelSpec::gpt_20b(), 0.35, 5);
    let total = scenario.requests.len();
    let report = ServingSystem::new(SystemOptions::spotserve(), scenario).run();
    assert_eq!(report.unfinished, 0, "recovery must drain the backlog");
    assert_eq!(report.latency.outcomes().len(), total);
    // The halt must be visible in the configuration history.
    assert!(
        report.config_changes.iter().any(|c| c.config.is_none()),
        "a halt should be recorded: {:?}",
        report.config_sequence()
    );
    assert_audit_clean(&report, total);
}

/// A churn storm: capacity oscillates every 45 s (shorter than a typical
/// reconfiguration settle interval). Nothing deadlocks, requests conserve.
#[test]
fn churn_storm_conserves_requests() {
    let mut steps = vec![(SimTime::ZERO, 8u32)];
    for i in 1..16u64 {
        steps.push((SimTime::from_secs(45 * i), if i % 2 == 0 { 8 } else { 5 }));
    }
    let trace = AvailabilityTrace::from_steps(steps);
    for opts in [
        SystemOptions::spotserve(),
        SystemOptions::reparallelization(),
        SystemOptions::rerouting(),
    ] {
        let scenario = short_scenario(trace.clone(), ModelSpec::gpt_20b(), 0.35, 7);
        let total = scenario.requests.len();
        let report = ServingSystem::new(opts.clone(), scenario).run();
        assert_eq!(
            report.latency.outcomes().len() + report.unfinished,
            total,
            "{:?}: requests must be conserved",
            opts.policy
        );
        assert_audit_clean(&report, total);
    }
}

/// Randomized trace fuzzing: many generated availability traces, every one
/// must conserve requests and terminate (a DES smoke test against hangs,
/// double-completion and lost-request bugs).
#[test]
fn randomized_traces_never_lose_requests() {
    for seed in 0..12u64 {
        let gen = cloudsim::TraceGenerator {
            min_capacity: 2,
            ..cloudsim::TraceGenerator::default()
        };
        let trace = gen.generate(&mut SimRng::new(seed).stream("fuzz"));
        let scenario = short_scenario(trace, ModelSpec::opt_6_7b(), 1.0, seed);
        let total = scenario.requests.len();
        let report = ServingSystem::new(SystemOptions::spotserve(), scenario).run();
        assert_eq!(
            report.latency.outcomes().len() + report.unfinished,
            total,
            "seed {seed}"
        );
        let mut ids: Vec<u64> = report
            .latency
            .outcomes()
            .iter()
            .map(|o| o.request.id.0)
            .collect();
        ids.sort_unstable();
        let n = ids.len();
        ids.dedup();
        assert_eq!(n, ids.len(), "seed {seed}: duplicated completion");
        assert_audit_clean(&report, total);
    }
}

/// Preemptions landing while long prompts are mid-chunked-prefill: the
/// half-prefilled checkpoints migrate (or recompute) without losing or
/// double-completing any request, and cloudsim's billing stays
/// replay-exact (no instance billed twice for the same interval).
#[test]
fn preemption_mid_chunked_prefill_loses_no_tokens_and_bills_once() {
    // Long prompts (up to 3072 tokens) at chunk 128 spend tens of passes
    // prefilling; capacity drops every 60 s, so preemptions land inside
    // those windows with certainty.
    let trace = AvailabilityTrace::from_steps(vec![
        (SimTime::ZERO, 6),
        (SimTime::from_secs(60), 5),
        (SimTime::from_secs(120), 4),
        (SimTime::from_secs(180), 6),
        (SimTime::from_secs(240), 4),
    ]);
    let run = || {
        let spec = WorkloadSpec::paper_stable(1.0);
        let inputs = LengthDist::LongTail {
            common: 512,
            tail: 3072,
            tail_fraction: 0.25,
        };
        let outputs = LengthDist::Uniform { lo: 8, hi: 96 };
        let mut requests =
            spec.generate_with_lengths(&inputs, &outputs, &mut SimRng::new(41).stream("arrivals"));
        requests.retain(|r| r.arrival < SimTime::from_secs(400));
        // A loose SLO on every request keeps the SLO admission path hot
        // without forcing rejections.
        workload::apply_slo(&mut requests, SimDuration::from_secs(3000));
        let total = requests.len();
        let scenario =
            Scenario::with_requests(ModelSpec::opt_6_7b(), trace.clone(), requests, 1.0, 41);
        let report =
            ServingSystem::new(SystemOptions::spotserve().with_prefill_chunk(128), scenario).run();
        (total, report)
    };
    let (total, report) = run();
    assert!(report.preemptions >= 3, "preemptions must land");
    // No token loss: every request reaches a terminal outcome.
    assert_eq!(
        report.settled() + report.unfinished,
        total,
        "requests must be conserved"
    );
    assert_eq!(report.unfinished, 0, "backlog drains after recovery");
    let mut ids: Vec<u64> = report
        .latency
        .outcomes()
        .iter()
        .map(|o| o.request.id.0)
        .collect();
    ids.sort_unstable();
    let n = ids.len();
    ids.dedup();
    assert_eq!(n, ids.len(), "no double completion");
    // No double billing: the meter's total is strictly positive and
    // byte-replayable — an instance billed twice in one run would break
    // the bit-equality with its replay.
    assert!(report.cost_usd > 0.0);
    let (_, replay) = run();
    assert_eq!(
        report.cost_usd.to_bits(),
        replay.cost_usd.to_bits(),
        "billing must be replay-exact"
    );
    assert_eq!(report.latency.outcomes(), replay.latency.outcomes());
}

/// Preemption exactly during a migration window (§4.2's "preempted before
/// expected" case): the system re-plans with the survivors.
#[test]
fn preemption_during_migration_replans() {
    // Drop 2 instances 5 s apart so the second dies mid-migration.
    let trace = AvailabilityTrace::from_steps(vec![
        (SimTime::ZERO, 10),
        (SimTime::from_secs(150), 8),
        (SimTime::from_secs(155), 6),
        (SimTime::from_secs(160), 4),
    ]);
    let scenario = short_scenario(trace, ModelSpec::llama_30b(), 0.2, 9);
    let total = scenario.requests.len();
    let report = ServingSystem::new(SystemOptions::spotserve(), scenario).run();
    assert_eq!(report.latency.outcomes().len() + report.unfinished, total);
    assert_eq!(report.unfinished, 0);
    assert!(report.config_changes.len() >= 2, "re-planning happened");
    assert_audit_clean(&report, total);
}

// ---------------------------------------------------------------------------
// Chaos harness: seeded fault plans layered on top of the scripted traces.
// ---------------------------------------------------------------------------

/// Multi-pool chaos scenario: the supplied pools replace the scenario's
/// single trace, arrivals truncated to `horizon_secs`.
fn chaos_scenario(pools: Vec<PoolSpec>, horizon_secs: u64, rate: f64, seed: u64) -> Scenario {
    let mut s = Scenario::paper_stable(
        ModelSpec::opt_6_7b(),
        AvailabilityTrace::constant(0), // unused once pools are set
        rate,
        seed,
    )
    .with_pools(pools);
    s.requests
        .retain(|r| r.arrival < SimTime::from_secs(horizon_secs));
    s
}

/// An unannounced kill landing while a notice-driven migration is in
/// flight: a scripted capacity drop opens a grace window, and a high
/// chaos kill rate guarantees instances die inside it with zero grace.
/// The system must abandon the stale transition, re-plan with the
/// survivors, and conserve every request.
#[test]
fn unannounced_kill_mid_transition_replans_and_conserves() {
    let trace = AvailabilityTrace::from_steps(vec![
        (SimTime::ZERO, 8),
        (SimTime::from_secs(150), 6),
        (SimTime::from_secs(300), 8),
    ]);
    let pools =
        vec![PoolSpec::new("z0", trace).with_faults(FaultSpec::calm().with_kill_rate(45.0))];
    let scenario = chaos_scenario(pools, 600, 1.0, 11);
    let total = scenario.requests.len();
    let report = ServingSystem::new(SystemOptions::spotserve().with_telemetry(), scenario).run();
    assert!(
        report.faults >= 1,
        "chaos kills must land: {}",
        report.faults
    );
    assert!(
        report.preemptions >= 1,
        "the scripted drop still delivers notices"
    );
    assert_eq!(
        report.settled() + report.unfinished,
        total,
        "requests must be conserved under unannounced kills"
    );
    assert!(
        report.config_changes.len() >= 2,
        "kills must force re-planning: {:?}",
        report.config_sequence()
    );
    assert_audit_clean(&report, total);
}

/// Every preemption notice is lost (`notice_loss = 1.0`): scripted
/// capacity drops arrive as instant `InstanceFailed` kills with zero
/// grace and no chance to migrate. The run degrades to restart-recovery
/// but must stay conservation- and audit-clean.
#[test]
fn lost_notices_become_unannounced_faults() {
    let trace = AvailabilityTrace::from_steps(vec![
        (SimTime::ZERO, 6),
        (SimTime::from_secs(150), 4),
        (SimTime::from_secs(250), 6),
        (SimTime::from_secs(350), 4),
    ]);
    let pools =
        vec![PoolSpec::new("z0", trace).with_faults(FaultSpec::calm().with_notice_loss(1.0))];
    let scenario = chaos_scenario(pools, 600, 1.0, 13);
    let total = scenario.requests.len();
    let report = ServingSystem::new(SystemOptions::spotserve().with_telemetry(), scenario).run();
    assert!(
        report.faults >= 2,
        "lost notices must surface as faults: {}",
        report.faults
    );
    assert_eq!(
        report.preemptions, 0,
        "no notice may be delivered at notice_loss = 1.0"
    );
    assert_eq!(report.settled() + report.unfinished, total);
    assert_eq!(
        report.unfinished, 0,
        "restart recovery must drain the backlog"
    );
    assert_audit_clean(&report, total);
}

/// A pool whose grants always lapse: the tracker's deadlines fire, the
/// controller backs off exponentially, re-requests, and after repeated
/// failures escalates to on-demand. The healthy sibling pool plus the
/// escalation bridge keep the fleet serving with zero loss.
#[test]
fn lapsed_grants_back_off_and_recover() {
    // z1 alone is too small for the optimizer's target, so the hedge
    // must request into z0 once its capacity appears at t = 60 s — and
    // every one of those grants lapses.
    let pools = vec![
        PoolSpec::new(
            "z0",
            AvailabilityTrace::from_steps(vec![(SimTime::ZERO, 0), (SimTime::from_secs(60), 8)]),
        )
        .with_faults(FaultSpec::calm().with_grant_lapse(1.0)),
        PoolSpec::new("z1", AvailabilityTrace::constant(2)),
    ];
    let scenario = chaos_scenario(pools, 900, 1.0, 17);
    let total = scenario.requests.len();
    let report = ServingSystem::new(
        SystemOptions::spotserve()
            .with_fleet_policy(FleetPolicy::spot_hedge())
            .with_telemetry(),
        scenario,
    )
    .run();
    assert!(
        report.lapses >= 1,
        "z0 grants must lapse visibly: {}",
        report.lapses
    );
    let stream = report.telemetry.as_ref().expect("telemetry enabled");
    let kinds: Vec<&str> = stream.records().iter().map(|r| r.event.kind()).collect();
    assert!(
        kinds.contains(&"lapse"),
        "lapses must reach the telemetry stream"
    );
    assert!(
        kinds.contains(&"retry"),
        "backoff re-requests must be scheduled"
    );
    assert_eq!(report.unfinished, 0, "recovery must keep serving");
    assert_eq!(report.settled(), total);
    assert_audit_clean(&report, total);
}

/// A degraded link throttling checkpoint transfers mid-migration: the
/// scripted drop forces a migration inside the degraded window, and the
/// triage must downgrade mid-flight rather than blow the deadline.
#[test]
fn degraded_link_downgrades_triage_instead_of_missing_deadlines() {
    let trace = AvailabilityTrace::from_steps(vec![
        (SimTime::ZERO, 8),
        (SimTime::from_secs(150), 5),
        (SimTime::from_secs(400), 8),
    ]);
    let pools = vec![
        PoolSpec::new("z0", trace).with_faults(FaultSpec::calm().with_degraded_link(
            SimTime::from_secs(100),
            SimTime::from_secs(300),
            0.05,
        )),
    ];
    let scenario = chaos_scenario(pools, 600, 1.0, 19);
    let total = scenario.requests.len();
    let report = ServingSystem::new(SystemOptions::spotserve().with_telemetry(), scenario).run();
    assert!(report.preemptions >= 1);
    assert_eq!(report.settled() + report.unfinished, total);
    assert_audit_clean(&report, total);
}

/// The full chaos pack at high intensity across two pools, hedged: the
/// run may degrade (SLO rejections, higher cost) but must never corrupt —
/// the auditor's conservation laws hold at every intensity.
#[test]
fn chaos_pack_degrades_gracefully_under_hedge() {
    // The full pack, with z0's kill channel boosted so kills land inside
    // the 900 s window with certainty (the pack's own 6/h rate has a
    // ~20% chance of drawing none in so short a run).
    let pools = vec![
        PoolSpec::new("z0", AvailabilityTrace::constant(5))
            .with_faults(FaultSpec::pack(1.0).with_kill_rate(30.0)),
        PoolSpec::new("z1", AvailabilityTrace::constant(5)).with_faults(FaultSpec::pack(0.5)),
    ];
    let scenario = chaos_scenario(pools, 900, 1.0, 23);
    let total = scenario.requests.len();
    let report = ServingSystem::new(
        SystemOptions::spotserve()
            .with_fleet_policy(FleetPolicy::spot_hedge())
            .with_telemetry(),
        scenario,
    )
    .run();
    assert!(report.faults >= 1, "the pack's kill channel must fire");
    assert_eq!(report.settled() + report.unfinished, total);
    assert_audit_clean(&report, total);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Randomized fault plans never violate the auditor: whatever the
    /// chaos knobs draw, every run conserves requests, keeps leases
    /// balanced, and bills consistently.
    #[test]
    fn randomized_fault_plans_never_violate_invariants(
        intensity in 0.1f64..0.9,
        seed in 0u64..1024,
    ) {
        let pools = vec![
            PoolSpec::new("z0", AvailabilityTrace::constant(5))
                .with_faults(FaultSpec::pack(intensity)),
            PoolSpec::new("z1", AvailabilityTrace::constant(4)),
        ];
        let scenario = chaos_scenario(pools, 400, 1.0, seed);
        let total = scenario.requests.len();
        let report = ServingSystem::new(
            SystemOptions::spotserve()
                .with_fleet_policy(FleetPolicy::spot_hedge())
                .with_telemetry(),
            scenario,
        )
        .run();
        prop_assert_eq!(report.settled() + report.unfinished, total);
        assert_audit_clean(&report, total);
    }
}
