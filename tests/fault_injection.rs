//! Fault-injection scenarios for §4.2's interruption fault tolerance:
//! overlapping grace periods, capacity collapses, churn storms, recovery
//! from total outage, and preemption landing mid-chunked-prefill.

use cloudsim::AvailabilityTrace;
use llmsim::ModelSpec;
use simkit::{SimDuration, SimRng, SimTime};
use spotserve::{Scenario, ServingSystem, SystemOptions};
use workload::{LengthDist, WorkloadSpec};

fn short_scenario(trace: AvailabilityTrace, model: ModelSpec, rate: f64, seed: u64) -> Scenario {
    let mut s = Scenario::paper_stable(model, trace, rate, seed);
    s.requests.retain(|r| r.arrival < SimTime::from_secs(600));
    s
}

/// Two preemption notices landing 10 s apart: their grace periods overlap,
/// so the second arrives while the first migration is being arranged.
#[test]
fn overlapping_grace_periods_are_survived() {
    let trace = AvailabilityTrace::from_steps(vec![
        (SimTime::ZERO, 8),
        (SimTime::from_secs(100), 7),
        (SimTime::from_secs(110), 6),
        (SimTime::from_secs(120), 5),
    ]);
    let scenario = short_scenario(trace, ModelSpec::gpt_20b(), 0.35, 3);
    let total = scenario.requests.len();
    let report = ServingSystem::new(SystemOptions::spotserve(), scenario).run();
    assert_eq!(report.latency.outcomes().len() + report.unfinished, total);
    assert_eq!(report.unfinished, 0, "all requests must eventually finish");
    assert!(report.preemptions >= 3);
}

/// The fleet collapses below the model's minimum and recovers: serving
/// halts, context is preserved where possible, and the system resumes.
#[test]
fn total_outage_and_recovery() {
    let trace = AvailabilityTrace::from_steps(vec![
        (SimTime::ZERO, 6),
        (SimTime::from_secs(120), 2), // below GPT-20B's 3-instance minimum
        (SimTime::from_secs(300), 6),
    ]);
    let scenario = short_scenario(trace, ModelSpec::gpt_20b(), 0.35, 5);
    let total = scenario.requests.len();
    let report = ServingSystem::new(SystemOptions::spotserve(), scenario).run();
    assert_eq!(report.unfinished, 0, "recovery must drain the backlog");
    assert_eq!(report.latency.outcomes().len(), total);
    // The halt must be visible in the configuration history.
    assert!(
        report.config_changes.iter().any(|c| c.config.is_none()),
        "a halt should be recorded: {:?}",
        report.config_sequence()
    );
}

/// A churn storm: capacity oscillates every 45 s (shorter than a typical
/// reconfiguration settle interval). Nothing deadlocks, requests conserve.
#[test]
fn churn_storm_conserves_requests() {
    let mut steps = vec![(SimTime::ZERO, 8u32)];
    for i in 1..16u64 {
        steps.push((SimTime::from_secs(45 * i), if i % 2 == 0 { 8 } else { 5 }));
    }
    let trace = AvailabilityTrace::from_steps(steps);
    for opts in [
        SystemOptions::spotserve(),
        SystemOptions::reparallelization(),
        SystemOptions::rerouting(),
    ] {
        let scenario = short_scenario(trace.clone(), ModelSpec::gpt_20b(), 0.35, 7);
        let total = scenario.requests.len();
        let report = ServingSystem::new(opts.clone(), scenario).run();
        assert_eq!(
            report.latency.outcomes().len() + report.unfinished,
            total,
            "{:?}: requests must be conserved",
            opts.policy
        );
    }
}

/// Randomized trace fuzzing: many generated availability traces, every one
/// must conserve requests and terminate (a DES smoke test against hangs,
/// double-completion and lost-request bugs).
#[test]
fn randomized_traces_never_lose_requests() {
    for seed in 0..12u64 {
        let gen = cloudsim::TraceGenerator {
            min_capacity: 2,
            ..cloudsim::TraceGenerator::default()
        };
        let trace = gen.generate(&mut SimRng::new(seed).stream("fuzz"));
        let scenario = short_scenario(trace, ModelSpec::opt_6_7b(), 1.0, seed);
        let total = scenario.requests.len();
        let report = ServingSystem::new(SystemOptions::spotserve(), scenario).run();
        assert_eq!(
            report.latency.outcomes().len() + report.unfinished,
            total,
            "seed {seed}"
        );
        let mut ids: Vec<u64> = report
            .latency
            .outcomes()
            .iter()
            .map(|o| o.request.id.0)
            .collect();
        ids.sort_unstable();
        let n = ids.len();
        ids.dedup();
        assert_eq!(n, ids.len(), "seed {seed}: duplicated completion");
    }
}

/// Preemptions landing while long prompts are mid-chunked-prefill: the
/// half-prefilled checkpoints migrate (or recompute) without losing or
/// double-completing any request, and cloudsim's billing stays
/// replay-exact (no instance billed twice for the same interval).
#[test]
fn preemption_mid_chunked_prefill_loses_no_tokens_and_bills_once() {
    // Long prompts (up to 3072 tokens) at chunk 128 spend tens of passes
    // prefilling; capacity drops every 60 s, so preemptions land inside
    // those windows with certainty.
    let trace = AvailabilityTrace::from_steps(vec![
        (SimTime::ZERO, 6),
        (SimTime::from_secs(60), 5),
        (SimTime::from_secs(120), 4),
        (SimTime::from_secs(180), 6),
        (SimTime::from_secs(240), 4),
    ]);
    let run = || {
        let spec = WorkloadSpec::paper_stable(1.0);
        let inputs = LengthDist::LongTail {
            common: 512,
            tail: 3072,
            tail_fraction: 0.25,
        };
        let outputs = LengthDist::Uniform { lo: 8, hi: 96 };
        let mut requests =
            spec.generate_with_lengths(&inputs, &outputs, &mut SimRng::new(41).stream("arrivals"));
        requests.retain(|r| r.arrival < SimTime::from_secs(400));
        // A loose SLO on every request keeps the SLO admission path hot
        // without forcing rejections.
        workload::apply_slo(&mut requests, SimDuration::from_secs(3000));
        let total = requests.len();
        let scenario =
            Scenario::with_requests(ModelSpec::opt_6_7b(), trace.clone(), requests, 1.0, 41);
        let report =
            ServingSystem::new(SystemOptions::spotserve().with_prefill_chunk(128), scenario).run();
        (total, report)
    };
    let (total, report) = run();
    assert!(report.preemptions >= 3, "preemptions must land");
    // No token loss: every request reaches a terminal outcome.
    assert_eq!(
        report.settled() + report.unfinished,
        total,
        "requests must be conserved"
    );
    assert_eq!(report.unfinished, 0, "backlog drains after recovery");
    let mut ids: Vec<u64> = report
        .latency
        .outcomes()
        .iter()
        .map(|o| o.request.id.0)
        .collect();
    ids.sort_unstable();
    let n = ids.len();
    ids.dedup();
    assert_eq!(n, ids.len(), "no double completion");
    // No double billing: the meter's total is strictly positive and
    // byte-replayable — an instance billed twice in one run would break
    // the bit-equality with its replay.
    assert!(report.cost_usd > 0.0);
    let (_, replay) = run();
    assert_eq!(
        report.cost_usd.to_bits(),
        replay.cost_usd.to_bits(),
        "billing must be replay-exact"
    );
    assert_eq!(report.latency.outcomes(), replay.latency.outcomes());
}

/// Preemption exactly during a migration window (§4.2's "preempted before
/// expected" case): the system re-plans with the survivors.
#[test]
fn preemption_during_migration_replans() {
    // Drop 2 instances 5 s apart so the second dies mid-migration.
    let trace = AvailabilityTrace::from_steps(vec![
        (SimTime::ZERO, 10),
        (SimTime::from_secs(150), 8),
        (SimTime::from_secs(155), 6),
        (SimTime::from_secs(160), 4),
    ]);
    let scenario = short_scenario(trace, ModelSpec::llama_30b(), 0.2, 9);
    let total = scenario.requests.len();
    let report = ServingSystem::new(SystemOptions::spotserve(), scenario).run();
    assert_eq!(report.latency.outcomes().len() + report.unfinished, total);
    assert_eq!(report.unfinished, 0);
    assert!(report.config_changes.len() >= 2, "re-planning happened");
}
