//! Shared helpers for the integration suites.
//!
//! `canonical` is THE byte-exact rendering of a [`RunReport`]. The
//! implementation lives on [`RunReport::canonical`] so the determinism
//! gate, the fleet-policy suite, and the sharded-replay digest all consume
//! the same bytes; this module keeps the historical free-function shape
//! the suites call.

use spotserve::RunReport;

/// Canonical byte-exact rendering of everything a run produced: floats
/// via their IEEE-754 bit patterns (so "close enough" can never pass),
/// including the per-kind / per-pool cost breakdown and SLO rejections.
pub fn canonical(report: &RunReport) -> String {
    report.canonical()
}
