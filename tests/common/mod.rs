//! Shared helpers for the integration suites.
//!
//! `canonical` is THE byte-exact rendering of a [`RunReport`] — the
//! determinism gate and the fleet-policy suite both use it, so a field
//! added to `RunReport` needs threading into exactly one place to stay
//! under the gate.

use std::fmt::Write as _;

use spotserve::RunReport;

/// Canonical byte-exact rendering of everything a run produced: floats
/// via their IEEE-754 bit patterns (so "close enough" can never pass),
/// including the per-kind / per-pool cost breakdown and SLO rejections.
pub fn canonical(report: &RunReport) -> String {
    let cost = report.cost();
    let mut out = String::new();
    writeln!(out, "cost_usd_bits={:016x}", cost.total_usd.to_bits()).unwrap();
    writeln!(out, "spot_usd_bits={:016x}", cost.spot_usd.to_bits()).unwrap();
    writeln!(out, "od_usd_bits={:016x}", cost.ondemand_usd.to_bits()).unwrap();
    for pc in &cost.pools {
        writeln!(
            out,
            "pool {} name={} sku={} spot_bits={:016x} od_bits={:016x}",
            pc.pool,
            pc.name,
            pc.sku,
            pc.spot_usd.to_bits(),
            pc.ondemand_usd.to_bits(),
        )
        .unwrap();
    }
    writeln!(out, "unfinished={}", report.unfinished).unwrap();
    writeln!(out, "finished_at_us={}", report.finished_at.as_micros()).unwrap();
    writeln!(out, "preemptions={}", report.preemptions).unwrap();
    writeln!(out, "grants={}", report.grants).unwrap();
    writeln!(out, "latency_name={}", report.latency.name()).unwrap();
    for o in report.latency.outcomes() {
        writeln!(
            out,
            "outcome id={} arrival_us={} s_in={} s_out={} finished_us={}",
            o.request.id,
            o.request.arrival.as_micros(),
            o.request.s_in,
            o.request.s_out,
            o.finished.as_micros(),
        )
        .unwrap();
    }
    for c in &report.config_changes {
        writeln!(
            out,
            "config at_us={} config={:?} pause_us={} migrated={} reloaded={}",
            c.at.as_micros(),
            c.config,
            c.pause.as_micros(),
            c.migrated_bytes,
            c.reloaded_bytes,
        )
        .unwrap();
    }
    for (t, spot, od) in &report.fleet_timeline {
        writeln!(out, "fleet t_us={} spot={spot} od={od}", t.as_micros()).unwrap();
    }
    for r in &report.slo_rejections {
        writeln!(
            out,
            "slo_reject id={} arrival_us={} s_in={} s_out={} deadline_us={}",
            r.id,
            r.arrival.as_micros(),
            r.s_in,
            r.s_out,
            r.deadline.map(|d| d.as_micros()).unwrap_or(0),
        )
        .unwrap();
    }
    out
}
