//! Shared helpers for the integration suites.
//!
//! `canonical` is THE byte-exact rendering of a [`RunReport`]. The
//! implementation lives on [`RunReport::canonical`] so the determinism
//! gate, the fleet-policy suite, and the sharded-replay digest all consume
//! the same bytes; this module keeps the historical free-function shape
//! the suites call.

use spotserve::{InvariantAuditor, RunReport};

/// Canonical byte-exact rendering of everything a run produced: floats
/// via their IEEE-754 bit patterns (so "close enough" can never pass),
/// including the per-kind / per-pool cost breakdown and SLO rejections.
#[allow(dead_code)] // each suite compiles this module separately
pub fn canonical(report: &RunReport) -> String {
    report.canonical()
}

/// Runs the [`InvariantAuditor`] over `report` pinned to `expected`
/// scenario requests, panicking with every violated invariant listed
/// unless the run is clean. Every integration suite routes its reports
/// through this — chaos on or off, a run may degrade but never corrupt.
#[allow(dead_code)] // each suite compiles this module separately
pub fn assert_audit_clean(report: &RunReport, expected: usize) {
    InvariantAuditor::new()
        .with_expected_requests(expected)
        .audit(report)
        .assert_clean();
}
