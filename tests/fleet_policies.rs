//! Fleet-controller policies end to end: the paper-exact reactive
//! baseline, on-demand fallback, and the multi-pool spot hedge.
//!
//! The pinned scenario is a scripted single-zone capacity collapse
//! (pool `z0` drops to zero mid-run while `z1`/`z2` stay healthy):
//! `SpotHedge` must sustain at least the optimizer's target `N` live
//! instances with zero request loss and zero SLO rejections, while
//! `ReactiveSpot` — bound to the single market — stalls. The spot vs
//! on-demand cost split lands in [`RunReport::cost_breakdown`].

use cloudsim::{AvailabilityTrace, PoolSpec};
use llmsim::ModelSpec;
use simkit::{SimDuration, SimTime};
use spotserve::{FleetPolicy, RunReport, Scenario, ServingSystem, SystemOptions};
use workload::apply_slo;

mod common;
use common::canonical;

/// The scripted single-zone collapse: `z0` healthy then dead at t = 300 s,
/// `z1`/`z2` steady.
fn outage_pools() -> Vec<PoolSpec> {
    vec![
        PoolSpec::new(
            "z0",
            AvailabilityTrace::from_steps(vec![(SimTime::ZERO, 6), (SimTime::from_secs(300), 0)]),
        ),
        PoolSpec::new("z1", AvailabilityTrace::constant(4)),
        PoolSpec::new("z2", AvailabilityTrace::constant(4)),
    ]
}

fn scenario(
    pools: Vec<PoolSpec>,
    horizon_secs: u64,
    slo: Option<SimDuration>,
    seed: u64,
) -> Scenario {
    let mut s = Scenario::paper_stable(
        ModelSpec::opt_6_7b(),
        AvailabilityTrace::constant(0), // unused once pools are set
        1.0,
        seed,
    )
    .with_pools(pools);
    s.requests
        .retain(|r| r.arrival < SimTime::from_secs(horizon_secs));
    if let Some(slo) = slo {
        apply_slo(&mut s.requests, slo);
    }
    s
}

/// Target fleet size `N` the optimizer adopted at bootstrap.
fn target_n(report: &RunReport) -> u32 {
    report.config_changes[0]
        .config
        .expect("bootstrap adopts a configuration")
        .instances_needed(4)
}

/// Minimum live instance count (spot + on-demand) from `t0` to the end of
/// the run. The timeline is a step function sampled at fleet events, so
/// the level *at* `t0` is the last sample at or before it.
fn min_live_after(report: &RunReport, t0: SimTime) -> u32 {
    let level_at_t0 = report
        .fleet_timeline
        .iter()
        .take_while(|(t, _, _)| *t <= t0)
        .last()
        .map(|(_, s, o)| s + o)
        .expect("samples before the window");
    report
        .fleet_timeline
        .iter()
        .filter(|(t, _, _)| *t > t0)
        .map(|(_, s, o)| s + o)
        .fold(level_at_t0, u32::min)
}

#[test]
fn reactive_spot_replays_bit_identical_to_the_default_path() {
    // `ReactiveSpot` *is* the default: selecting it explicitly must change
    // nothing, and a single-`PoolSpec` market must be byte-identical to
    // the plain single-trace form (the arbiter is a pass-through).
    let run = |opts: SystemOptions, pooled: bool| {
        let mut s = Scenario::paper_stable(
            ModelSpec::opt_6_7b(),
            AvailabilityTrace::paper_bs(),
            1.0,
            23,
        );
        s.requests.retain(|r| r.arrival < SimTime::from_secs(300));
        if pooled {
            s = s.with_pools(vec![PoolSpec::new(
                "default",
                AvailabilityTrace::paper_bs(),
            )]);
        }
        canonical(&ServingSystem::new(opts, s).run())
    };
    let legacy = run(SystemOptions::spotserve(), false);
    let explicit = run(
        SystemOptions::spotserve().with_fleet_policy(FleetPolicy::ReactiveSpot),
        false,
    );
    let pooled = run(SystemOptions::spotserve(), true);
    assert!(!legacy.is_empty());
    assert_eq!(legacy, explicit, "explicit ReactiveSpot must be a no-op");
    assert_eq!(legacy, pooled, "single-pool market must be a pass-through");
}

#[test]
fn on_demand_fallback_holds_target_after_the_grant_delay() {
    // Single market collapses from 6 to 1 instance at t = 300 s: spot alone
    // cannot hold the optimizer's target N, so on-demand must bridge —
    // and after (grace + on-demand grant delay) the live fleet never dips
    // below N again.
    let pools = vec![PoolSpec::new(
        "only",
        AvailabilityTrace::from_steps(vec![(SimTime::ZERO, 6), (SimTime::from_secs(300), 1)]),
    )];
    let s = scenario(pools, 480, None, 31);
    let total = s.requests.len();
    let report = ServingSystem::new(
        SystemOptions::spotserve().with_fleet_policy(FleetPolicy::OnDemandFallback),
        s,
    )
    .run();
    assert_eq!(report.unfinished, 0, "fallback serves everything");
    assert_eq!(report.latency.completed(), total);
    let n = target_n(&report);
    assert!(n > 1, "the outage must actually undershoot the target");
    // Settling window: 30 s grace + 40 s on-demand grant + scheduling slack.
    let settled_after = SimTime::from_secs(300 + 30 + 40 + 30);
    let min_live = min_live_after(&report, settled_after);
    assert!(
        min_live >= n,
        "live fleet {min_live} must hold target {n} after the grant delay"
    );
    assert!(
        report.cost().ondemand_usd > 0.0,
        "the bridge must show up in the cost split"
    );
    assert!(report.cost().spot_usd > 0.0);
}

#[test]
fn spot_hedge_survives_a_full_single_pool_outage() {
    // The pinned acceptance scenario: z0 collapses entirely at t = 300 s.
    // SpotHedge spreads target + hedge across zones, so the survivors
    // alone still hold the target: zero request loss, zero SLO rejections,
    // and live capacity never drops below N once the collapse settles.
    let slo = Some(SimDuration::from_secs(900));
    let hedge = ServingSystem::new(
        SystemOptions::spotserve().with_fleet_policy(FleetPolicy::spot_hedge()),
        scenario(outage_pools(), 480, slo, 41),
    )
    .run();
    assert_eq!(hedge.unfinished, 0, "zero request loss through the outage");
    assert!(hedge.slo_rejections.is_empty(), "zero SLO rejections");
    assert!(hedge.preemptions > 0, "the outage must actually bite");
    let n = target_n(&hedge);
    let settled_after = SimTime::from_secs(300 + 30 + 40 + 30);
    let min_live = min_live_after(&hedge, settled_after);
    assert!(
        min_live >= n,
        "hedged fleet {min_live} must sustain target {n} through the collapse"
    );
    // The cost split is reported; the hedge may bridge with on-demand
    // during the re-spread, but spot dominates.
    let cost = hedge.cost();
    assert!(cost.spot_usd > 0.0);
    assert!(cost.spot_usd > cost.ondemand_usd);

    // The reactive baseline is bound to z0 and stalls when it dies.
    let reactive = ServingSystem::new(
        SystemOptions::spotserve(),
        scenario(outage_pools(), 480, slo, 41),
    )
    .run();
    assert!(
        reactive.unfinished > 0 || !reactive.slo_rejections.is_empty(),
        "single-market reactive must stall on a z0 collapse"
    );
    assert_eq!(
        reactive.cost().ondemand_usd,
        0.0,
        "reactive never mixes in on-demand"
    );
}

#[test]
fn cost_per_token_undercuts_the_price_blind_hedge_through_a_squeeze() {
    // A spot-market squeeze: the cheap pool collapses at t = 300 s while
    // its price spikes past on-demand parity, then re-opens at the spiked
    // price (re-quoted mid-spike so controllers get a steering point).
    // SpotHedge is price-blind and re-enters; CostPerToken masks the pool
    // and bridges with on-demand below the spiked spot price — strictly
    // lower $/token at equal-or-better SLO attainment and zero loss.
    use cloudsim::{PriceModel, PriceTrace};
    let pools = || {
        vec![
            PoolSpec::new(
                "spiky",
                AvailabilityTrace::from_steps(vec![
                    (SimTime::ZERO, 6),
                    (SimTime::from_secs(300), 0),
                    (SimTime::from_secs(450), 6),
                ]),
            )
            .with_price(PriceModel::Trace(PriceTrace::from_steps(vec![
                (SimTime::ZERO, 1.9),
                (SimTime::from_secs(300), 6.0),
                (SimTime::from_secs(480), 6.3),
                (SimTime::from_secs(3600), 1.9),
            ]))),
            PoolSpec::new("calm", AvailabilityTrace::constant(3)).with_spot_price(2.1),
        ]
    };
    let slo = Some(SimDuration::from_secs(900));
    let run = |policy| {
        ServingSystem::new(
            SystemOptions::spotserve().with_fleet_policy(policy),
            scenario(pools(), 900, slo, 61),
        )
        .run()
    };
    let hedge = run(FleetPolicy::spot_hedge());
    let cpt = run(FleetPolicy::cost_per_token());
    assert_eq!(cpt.unfinished, 0, "the optimizer may never lose requests");
    assert!(
        cpt.slo_rejections.len() <= hedge.slo_rejections.len(),
        "cheaper must not mean later: {} > {} rejections",
        cpt.slo_rejections.len(),
        hedge.slo_rejections.len()
    );
    let (h, c) = (hedge.cost(), cpt.cost());
    let h_cpt = h.usd_per_token.expect("hedge committed tokens");
    let c_cpt = c.usd_per_token.expect("optimizer committed tokens");
    assert!(
        c_cpt < h_cpt,
        "CostPerToken must undercut SpotHedge: {c_cpt} vs {h_cpt}"
    );
    assert!(
        c.ondemand_usd > 0.0,
        "the shortfall bridge must show up as on-demand spend"
    );
}

#[test]
fn multi_pool_replay_is_byte_identical() {
    let run = || {
        let report = ServingSystem::new(
            SystemOptions::spotserve().with_fleet_policy(FleetPolicy::spot_hedge()),
            scenario(outage_pools(), 480, Some(SimDuration::from_secs(900)), 77),
        )
        .run();
        canonical(&report)
    };
    let a = run();
    let b = run();
    assert!(!a.is_empty());
    assert_eq!(a, b, "multi-pool hedged replays must be byte-identical");
}

#[test]
fn preemption_landing_during_an_acquisition_grant_is_survived() {
    // z0 oscillates so that capacity drops land while replacement grants
    // are still in flight (the grant is cancelled, the request lost) and
    // kills overlap provisioning. Conservation and determinism must hold.
    let pools = vec![
        PoolSpec::new(
            "z0",
            AvailabilityTrace::from_steps(vec![
                (SimTime::ZERO, 4),
                (SimTime::from_secs(60), 1),
                (SimTime::from_secs(100), 4),
                (SimTime::from_secs(130), 1),
                (SimTime::from_secs(200), 3),
            ]),
        ),
        PoolSpec::new("z1", AvailabilityTrace::constant(2)),
    ];
    let run = |seed| {
        let s = scenario(pools.clone(), 240, None, seed);
        let total = s.requests.len();
        let report = ServingSystem::new(
            SystemOptions::spotserve().with_fleet_policy(FleetPolicy::spot_hedge()),
            s,
        )
        .run();
        (total, report)
    };
    let (total, report) = run(53);
    assert!(report.preemptions >= 2, "churn must actually happen");
    assert_eq!(
        report.settled() + report.unfinished,
        total,
        "every request has exactly one terminal outcome"
    );
    let (_, again) = run(53);
    assert_eq!(canonical(&report), canonical(&again));
}
