//! Integration tests reproducing the paper's worked examples
//! (Figures 1, 4a and 4b) through the public API.

use cloudsim::{GpuRef, InstanceId};
use llmsim::ModelSpec;
use migration::{evaluate_plan, plan_migration, DeviceAssignment, MigrationTask, PlannerOptions};
use parallelism::{ParallelConfig, PositionContext};
use spotserve::devicemap::{map_devices, OldState};

fn gpus(instances: u64) -> Vec<GpuRef> {
    (0..instances)
        .flat_map(|i| (0..4u8).map(move |s| GpuRef::new(InstanceId(i), s)))
        .collect()
}

/// Figure 4a: the `(D=1,P=2,M=8) -> (D=1,P=3,M=4)` reconfiguration keeps
/// the interrupted request's decoding progress and moves strictly less than
/// the whole model.
#[test]
fn figure_4a_context_migration_preserves_progress() {
    let model = ModelSpec::gpt_20b();
    let old_cfg = ParallelConfig::new(1, 2, 8, 8);
    let new_cfg = ParallelConfig::new(1, 3, 4, 8);
    let g = gpus(4);
    let old_assignment = DeviceAssignment::contiguous(&old_cfg, &g);

    let old = OldState {
        config_and_assignment: Some((old_cfg, old_assignment.clone())),
        cache_bytes_per_pipeline: vec![1 << 30],
        progress_per_pipeline: vec![100],
    };
    let instances: Vec<InstanceId> = (0..4).map(InstanceId).collect();
    let outcome = map_devices(&model, &new_cfg, &instances, 4, &old, true);
    // The new pipeline 0' inherits the interrupted requests of pipeline 0.
    assert_eq!(outcome.inheritance, vec![Some(0)]);

    let task = MigrationTask {
        model: model.clone(),
        old_config: old_cfg,
        new_config: new_cfg,
        old_assignment,
        new_assignment: outcome.assignment,
        cache_bytes_per_pipeline: vec![1 << 30],
        pipeline_inheritance: outcome.inheritance,
    };
    let plan = plan_migration(&task, &PlannerOptions::default());
    // No replica was lost: the KV cache survives in full and nothing needs
    // cold storage.
    assert_eq!(plan.transfers.cache_lost_bytes, 0);
    assert_eq!(plan.total_bytes_from_storage(), 0);
    // Reuse means strictly less than one full model crosses the network.
    assert!(plan.total_bytes_network() < model.param_bytes());
    assert!(plan.total_bytes_network() > 0);
}

/// Figure 4b: in the `(D=2,P=2,M=2) -> (D=2,P=3,M=1)` mapping, the GPU
/// holding the first stage's shard of the inherited pipeline overlaps most
/// with the new first-stage positions, so KM keeps it on the first stage.
#[test]
fn figure_4b_mapping_matches_paper_intuition() {
    let model = ModelSpec::opt_6_7b();
    let layer_bytes = model.layer_bytes();
    // u1 of the figure: stage 0, shard 1 of a 2-way split over 12 "layers".
    let u1 = PositionContext::new(12, 2, 0, 2, 1);
    let v0 = PositionContext::new(12, 3, 0, 1, 0); // new stage 0'
    let v1 = PositionContext::new(12, 3, 1, 1, 0); // new stage 1'
    let v2 = PositionContext::new(12, 3, 2, 1, 0); // new stage 2'
    let w0 = u1.weight_overlap_bytes(&v0, layer_bytes);
    let w1 = u1.weight_overlap_bytes(&v1, layer_bytes);
    let w2 = u1.weight_overlap_bytes(&v2, layer_bytes);
    // "u1 ... overlaps the most model context with v0 ... since they are in
    // charge of the first stage of the new pipeline" (§3.3).
    assert!(w0 > w1, "{w0} vs {w1}");
    assert_eq!(w2, 0, "stage 2' shares no layers with old stage 0");
}

/// Figure 1b: a fresh start (the baseline behaviour) reloads everything
/// from storage, which is what context migration avoids.
#[test]
fn figure_1b_cold_restart_is_expensive() {
    let model = ModelSpec::llama_30b();
    let cfg = ParallelConfig::new(1, 2, 8, 8);
    let fleet: Vec<(InstanceId, u8)> = (0..4).map(|i| (InstanceId(i), 4)).collect();
    let task = MigrationTask::fresh_start(&model, cfg, &fleet);
    let plan = plan_migration(&task, &PlannerOptions::default());
    let tl = evaluate_plan(
        &plan,
        &cloudsim::NetFabric::g4dn_default(),
        &cloudsim::ColdStorage::default(),
    );
    // >1 minute to reload a 111 GB model across 4 instances.
    assert!(tl.total.as_secs_f64() > 45.0, "total {}", tl.total);
    assert_eq!(plan.total_bytes_network(), 0);
}

/// Section 3.3: when the new configuration handles fewer concurrent
/// requests, the inheritance keeps the pipelines with the most decoding
/// progress.
#[test]
fn shrink_keeps_most_progressed_pipelines() {
    let model = ModelSpec::opt_6_7b();
    let old_cfg = ParallelConfig::new(3, 1, 4, 8);
    let g = gpus(3);
    let old = OldState {
        config_and_assignment: Some((old_cfg, DeviceAssignment::contiguous(&old_cfg, &g))),
        cache_bytes_per_pipeline: vec![1 << 20; 3],
        progress_per_pipeline: vec![10, 120, 50],
    };
    let new_cfg = ParallelConfig::new(2, 1, 4, 8);
    let instances: Vec<InstanceId> = (0..3).map(InstanceId).collect();
    let outcome = map_devices(&model, &new_cfg, &instances, 4, &old, true);
    // Pipelines with 120 and 50 committed tokens survive; 10 is dropped.
    assert_eq!(outcome.inheritance, vec![Some(1), Some(2)]);
}
