//! Shard-merge invariants for the metrics substrate: statistics gathered in
//! per-shard accumulators and folded together at a barrier must agree with a
//! single accumulator fed the whole stream — exactly for quantiles (samplers
//! retain the full multiset), and to 1e-9 for the Welford moments.

use proptest::prelude::*;
use simkit::{OnlineStats, Sampler};

fn close(a: f64, b: f64, tol: f64) -> bool {
    (a - b).abs() <= tol * (1.0 + a.abs().max(b.abs()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sharded_then_merged_matches_single_accumulator(
        samples in proptest::collection::vec(-1.0e3f64..1.0e3, 256),
        n in 1usize..=256,
        shards in 1usize..=6,
    ) {
        let used = &samples[..n];

        let mut single_s = Sampler::new();
        let mut single_o = OnlineStats::new();
        for &x in used {
            single_s.record(x);
            single_o.record(x);
        }

        // Round-robin the stream across shards, then fold in shard order —
        // the same deterministic merge order the sharded engine uses.
        let mut shard_s: Vec<Sampler> = (0..shards).map(|_| Sampler::new()).collect();
        let mut shard_o: Vec<OnlineStats> = (0..shards).map(|_| OnlineStats::new()).collect();
        for (i, &x) in used.iter().enumerate() {
            shard_s[i % shards].record(x);
            shard_o[i % shards].record(x);
        }
        let mut merged_s = Sampler::new();
        let mut merged_o = OnlineStats::new();
        for i in 0..shards {
            merged_s.merge(&shard_s[i]);
            merged_o.merge(&shard_o[i]);
        }

        // Quantiles are bitwise identical: same multiset, same sort, same rank.
        prop_assert_eq!(merged_s.count(), single_s.count());
        for q in [0.0, 0.1, 0.25, 0.5, 0.9, 0.95, 0.96, 0.97, 0.98, 0.99, 1.0] {
            prop_assert_eq!(
                merged_s.quantile(q).map(f64::to_bits),
                single_s.quantile(q).map(f64::to_bits),
                "quantile {} diverged", q
            );
        }

        // Moments agree to 1e-9 (pairwise Welford roundoff only).
        prop_assert_eq!(merged_o.count(), single_o.count());
        prop_assert!(close(merged_o.mean(), single_o.mean(), 1e-9));
        prop_assert!(close(merged_o.variance(), single_o.variance(), 1e-9));
        prop_assert!(close(
            merged_s.mean().unwrap(),
            single_s.mean().unwrap(),
            1e-9
        ));
        prop_assert_eq!(merged_o.min(), single_o.min());
        prop_assert_eq!(merged_o.max(), single_o.max());
    }

    #[test]
    fn batched_quantiles_match_single_queries(
        samples in proptest::collection::vec(-1.0e6f64..1.0e6, 256),
        n in 1usize..=256,
        mut qs in proptest::collection::vec(0.0f64..1.0, 10),
    ) {
        // The batched path shares one sort with the single-query path, so
        // every returned value must be bitwise identical to quantile(q) —
        // including after a merge, which unsorts the storage. The closed
        // endpoints ride along explicitly (the generator range is half-open).
        qs.push(0.0);
        qs.push(1.0);
        let mut s: Sampler = samples[..n].iter().copied().collect();
        let mut batch = Vec::new();
        s.quantiles_into(&qs, &mut batch);
        prop_assert_eq!(batch.len(), qs.len());
        for (&q, &v) in qs.iter().zip(&batch) {
            prop_assert_eq!(
                Some(v.to_bits()),
                s.quantile(q).map(f64::to_bits),
                "batched quantile {} diverged", q
            );
        }

        let extra: Sampler = samples[..n].iter().map(|x| x * 0.5).collect();
        s.merge(&extra);
        let mut after = Vec::new();
        s.quantiles_into(&qs, &mut after);
        for (&q, &v) in qs.iter().zip(&after) {
            prop_assert_eq!(
                Some(v.to_bits()),
                s.quantile(q).map(f64::to_bits),
                "post-merge batched quantile {} diverged", q
            );
        }
    }

    #[test]
    fn merge_with_empty_is_identity(
        samples in proptest::collection::vec(0.0f64..100.0, 32),
    ) {
        let mut s: Sampler = samples.iter().copied().collect();
        let mut o = OnlineStats::new();
        for &x in &samples {
            o.record(x);
        }
        let s_before = s.percentiles();
        let (o_mean, o_var, o_n) = (o.mean(), o.variance(), o.count());

        s.merge(&Sampler::new());
        o.merge(&OnlineStats::new());
        // The first percentiles() call sorted the samples in place, so the
        // second summation order differs — quantiles stay bitwise equal,
        // means only to roundoff.
        let s_after = s.percentiles();
        prop_assert_eq!(s_after.count, s_before.count);
        prop_assert_eq!(s_after.p50.to_bits(), s_before.p50.to_bits());
        prop_assert_eq!(s_after.p99.to_bits(), s_before.p99.to_bits());
        prop_assert_eq!(s_after.max.to_bits(), s_before.max.to_bits());
        prop_assert!(close(s_after.mean, s_before.mean, 1e-9));
        prop_assert_eq!(o.mean().to_bits(), o_mean.to_bits());
        prop_assert_eq!(o.variance().to_bits(), o_var.to_bits());
        prop_assert_eq!(o.count(), o_n);

        // And merging *into* an empty accumulator clones the source.
        // (Quantiles are bitwise identical; the sampler mean is a fresh
        // summation in storage order, so it only matches to roundoff.)
        let mut s2 = Sampler::new();
        s2.merge(&s);
        let (a, b) = (s2.percentiles(), s.percentiles());
        prop_assert_eq!(a.count, b.count);
        for (qa, qb) in a.figure6_row()[1..].iter().zip(&b.figure6_row()[1..]) {
            prop_assert_eq!(qa.to_bits(), qb.to_bits());
        }
        prop_assert_eq!(a.p50.to_bits(), b.p50.to_bits());
        prop_assert_eq!(a.max.to_bits(), b.max.to_bits());
        prop_assert!(close(a.mean, b.mean, 1e-9));
        let mut o2 = OnlineStats::new();
        o2.merge(&o);
        prop_assert_eq!(o2.mean().to_bits(), o.mean().to_bits());
        prop_assert_eq!(o2.variance().to_bits(), o.variance().to_bits());
    }
}
