//! Cross-crate end-to-end tests: full serving runs through the public API.

use cloudsim::AvailabilityTrace;
use llmsim::ModelSpec;
use simkit::SimTime;
use spotserve::{AblationFlags, Scenario, ServingSystem, SystemOptions};

mod common;
use common::assert_audit_clean;

fn short(model: ModelSpec, trace: AvailabilityTrace, rate: f64, seed: u64) -> Scenario {
    let mut s = Scenario::paper_stable(model, trace, rate, seed);
    s.requests.retain(|r| r.arrival < SimTime::from_secs(300));
    s
}

#[test]
fn spotserve_beats_baselines_on_volatile_trace() {
    let trace = AvailabilityTrace::paper_bs();
    let mut p99 = Vec::new();
    for opts in [
        SystemOptions::spotserve(),
        SystemOptions::reparallelization(),
        SystemOptions::rerouting(),
    ] {
        let scenario = Scenario::paper_stable(ModelSpec::gpt_20b(), trace.clone(), 0.35, 1);
        let mut report = ServingSystem::new(opts, scenario).run();
        assert_eq!(report.unfinished, 0);
        p99.push(report.latency.percentiles().p99);
    }
    assert!(
        p99[0] < p99[1],
        "SpotServe {} vs Reparallelization {}",
        p99[0],
        p99[1]
    );
    assert!(
        p99[0] < p99[2],
        "SpotServe {} vs Rerouting {}",
        p99[0],
        p99[2]
    );
}

#[test]
fn whole_pipeline_is_deterministic() {
    let run = || {
        let scenario = short(
            ModelSpec::gpt_20b(),
            AvailabilityTrace::paper_bs(),
            0.35,
            99,
        );
        let mut report = ServingSystem::new(SystemOptions::spotserve(), scenario).run();
        let p = report.latency.percentiles();
        (
            p.count,
            p.mean.to_bits(),
            p.p99.to_bits(),
            report.cost_usd.to_bits(),
            report.config_changes.len(),
            report.preemptions,
        )
    };
    assert_eq!(run(), run(), "bit-identical replays");
}

#[test]
fn different_seeds_give_different_workloads() {
    let a = Scenario::paper_stable(ModelSpec::opt_6_7b(), AvailabilityTrace::paper_as(), 1.5, 1);
    let b = Scenario::paper_stable(ModelSpec::opt_6_7b(), AvailabilityTrace::paper_as(), 1.5, 2);
    assert_ne!(a.requests, b.requests);
}

#[test]
fn on_demand_mixing_reduces_tail_on_deep_dips() {
    let trace = AvailabilityTrace::paper_bs();
    let run = |mixing: bool| {
        let opts = if mixing {
            SystemOptions::spotserve().with_on_demand_mixing()
        } else {
            SystemOptions::spotserve()
        };
        let scenario = Scenario::paper_stable(ModelSpec::llama_30b(), trace.clone(), 0.2, 3);
        let mut report = ServingSystem::new(opts, scenario).run();
        (report.latency.percentiles().p99, report.cost_usd)
    };
    let (p99_spot, cost_spot) = run(false);
    let (p99_mixed, cost_mixed) = run(true);
    assert!(
        p99_mixed < p99_spot,
        "mixing must cut the tail: {p99_mixed} vs {p99_spot}"
    );
    assert!(
        cost_mixed > cost_spot,
        "on-demand capacity costs more: {cost_mixed} vs {cost_spot}"
    );
}

#[test]
fn every_request_is_accounted_for_exactly_once() {
    for opts in [
        SystemOptions::spotserve(),
        SystemOptions::reparallelization(),
        SystemOptions::rerouting(),
    ] {
        let scenario = short(ModelSpec::opt_6_7b(), AvailabilityTrace::paper_bs(), 1.5, 5);
        let total = scenario.requests.len();
        let report = ServingSystem::new(opts.clone(), scenario).run();
        let mut ids: Vec<u64> = report
            .latency
            .outcomes()
            .iter()
            .map(|o| o.request.id.0)
            .collect();
        ids.sort_unstable();
        let before = ids.len();
        ids.dedup();
        assert_eq!(
            before,
            ids.len(),
            "{:?}: duplicate completions",
            opts.policy
        );
        assert_eq!(
            ids.len() + report.unfinished,
            total,
            "{:?}: conservation of requests",
            opts.policy
        );
        assert_audit_clean(&report, total);
    }
}

#[test]
fn latencies_are_never_negative_and_finish_after_arrival() {
    let scenario = short(ModelSpec::gpt_20b(), AvailabilityTrace::paper_as(), 0.35, 8);
    let report = ServingSystem::new(SystemOptions::spotserve(), scenario).run();
    for o in report.latency.outcomes() {
        assert!(o.finished >= o.request.arrival);
    }
}

#[test]
fn full_ablation_is_still_correct_just_slower() {
    let flags = AblationFlags {
        no_controller: true,
        no_migration_planner: true,
        no_interruption_arranger: true,
        no_device_mapper: true,
    };
    let scenario = short(
        ModelSpec::gpt_20b(),
        AvailabilityTrace::paper_bs(),
        0.35,
        13,
    );
    let total = scenario.requests.len();
    let plain = ServingSystem::new(SystemOptions::spotserve().with_ablation(flags), scenario).run();
    assert_eq!(plain.latency.outcomes().len() + plain.unfinished, total);
    assert_audit_clean(&plain, total);
}

#[test]
fn costs_scale_with_fleet_price() {
    // An on-demand fleet of the same size costs ~2x the spot fleet.
    let spot = {
        let sc = short(
            ModelSpec::opt_6_7b(),
            AvailabilityTrace::constant(4),
            1.0,
            21,
        );
        ServingSystem::new(SystemOptions::spotserve(), sc).run()
    };
    let od = {
        let sc = short(
            ModelSpec::opt_6_7b(),
            AvailabilityTrace::constant(4),
            1.0,
            21,
        );
        ServingSystem::new(SystemOptions::on_demand_only(4), sc).run()
    };
    assert!(
        od.cost_usd > spot.cost_usd * 1.2,
        "{} vs {}",
        od.cost_usd,
        spot.cost_usd
    );
}
