//! Perf smoke: the paper's "adapt within 1 second" claim (§3.2), held as
//! a loose regression gate.
//!
//! Thresholds are deliberately enormous relative to the measured steady
//! state (a warm `decide` at the 256-instance ceiling measures ~50 ns in
//! release mode, see the `control_plane` bench) so only gross regressions
//! — e.g. losing the frontier/memo and falling back to per-call
//! re-enumeration at scale — can trip them, never CI jitter or debug-mode
//! overhead. CI additionally asserts the release-mode number out of
//! `BENCH_PR5.json` in the bench-smoke job.

use std::time::Instant;

use llmsim::ModelSpec;
use spotserve::ConfigOptimizer;

#[test]
fn warm_decide_at_256_instance_ceiling_stays_far_under_the_1s_budget() {
    let opt = ConfigOptimizer::paper_defaults(ModelSpec::gpt_20b(), 256);
    // Cold call: enumerates, prices and prunes the frontier once. The
    // paper's budget is 1 s per re-decision; grant 5 s so a debug build on
    // a loaded CI machine cannot flake.
    let cold = Instant::now();
    let first = opt.decide(254, 0.35);
    let cold_elapsed = cold.elapsed();
    assert!(first.now.is_some(), "a 254-instance fleet serves GPT-20B");
    assert!(
        cold_elapsed.as_secs_f64() < 5.0,
        "cold decide at the 256 ceiling took {cold_elapsed:?}"
    );
    // Warm calls: memo hits. Mean must stay orders of magnitude under the
    // budget even in debug mode.
    let reps = 100u32;
    let warm = Instant::now();
    for _ in 0..reps {
        assert_eq!(std::hint::black_box(opt.decide(254, 0.35)), first);
    }
    let per_call = warm.elapsed() / reps;
    assert!(
        per_call.as_millis() < 100,
        "warm decide at the 256 ceiling took {per_call:?} per call"
    );
}
