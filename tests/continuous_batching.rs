//! System-level tests for the iteration-level continuous batching engine:
//! engine parity on the paper's stable workload, the heterogeneous-output
//! scenario axis it opens, and engine/policy interactions under churn.

use cloudsim::AvailabilityTrace;
use llmsim::ModelSpec;
use simkit::{SimRng, SimTime};
use spotserve::{EngineMode, RunReport, Scenario, ServingSystem, SystemOptions};
use workload::{OutputDist, Request, WorkloadSpec};

mod common;
use common::assert_audit_clean;

fn run(opts: SystemOptions, scenario: Scenario) -> RunReport {
    ServingSystem::new(opts, scenario).run()
}

fn long_tail_requests(seed: u64) -> Vec<Request> {
    let spec = WorkloadSpec::paper_stable(1.5);
    let dist = OutputDist::LongTail {
        common: 32,
        tail: 512,
        tail_fraction: 0.1,
    };
    spec.generate_mixed(&dist, &mut SimRng::new(seed).stream("arrivals"))
}

/// Acceptance: under the paper's stable workload (§6.1, Gamma CV 6) the
/// continuous engine's throughput is at least the fixed-batch engine's at
/// equal configuration, and it finishes no later.
#[test]
fn continuous_throughput_at_least_fixed_on_stable_workload() {
    for (model, trace, rate) in [
        (ModelSpec::opt_6_7b(), AvailabilityTrace::paper_as(), 1.5f64),
        (ModelSpec::gpt_20b(), AvailabilityTrace::paper_bs(), 0.35),
    ] {
        let mut results = Vec::new();
        for engine in [EngineMode::ContinuousBatching, EngineMode::FixedBatch] {
            let scenario = Scenario::paper_stable(model.clone(), trace.clone(), rate, 1);
            let total = scenario.requests.len();
            let mut report = run(SystemOptions::spotserve().with_engine(engine), scenario);
            assert_eq!(report.unfinished, 0, "{}: {engine:?}", model.name);
            let p = report.latency.percentiles();
            assert_eq!(p.count, total);
            let throughput = p.count as f64 / report.finished_at.as_micros() as f64 * 1e6;
            results.push((throughput, p.mean));
        }
        let (thr_cont, mean_cont) = results[0];
        let (thr_fixed, mean_fixed) = results[1];
        assert!(
            thr_cont >= thr_fixed * (1.0 - 1e-9),
            "{}: continuous {thr_cont} req/s must not trail fixed {thr_fixed}",
            model.name
        );
        assert!(
            mean_cont <= mean_fixed,
            "{}: continuous mean {mean_cont}s must not exceed fixed {mean_fixed}s",
            model.name
        );
    }
}

/// The scenario axis fixed batching could never express: with long-tail
/// output lengths, run-to-completion holds every short request hostage to
/// its batch's longest member; iteration-level retirement frees them.
#[test]
fn long_tail_outputs_are_not_hostage_to_the_batch() {
    let requests = long_tail_requests(7);
    let mut means = Vec::new();
    for engine in [EngineMode::ContinuousBatching, EngineMode::FixedBatch] {
        let scenario = Scenario::with_requests(
            ModelSpec::opt_6_7b(),
            AvailabilityTrace::constant(6),
            requests.clone(),
            1.5,
            7,
        );
        let total = scenario.requests.len();
        let mut report = run(SystemOptions::spotserve().with_engine(engine), scenario);
        assert_eq!(report.unfinished, 0, "{engine:?}");
        assert_eq!(report.latency.percentiles().count, total);
        means.push(report.latency.percentiles().mean);
    }
    assert!(
        means[0] < means[1] * 0.5,
        "continuous mean {} must be far below fixed {} on a long tail",
        means[0],
        means[1]
    );
}

/// Heterogeneous in-flight sets survive churn under every policy: the
/// migration/recovery paths checkpoint per-request progress, and no
/// request is lost or double-completed.
#[test]
fn mixed_outputs_conserved_under_churn_for_all_policies() {
    let trace = AvailabilityTrace::from_steps(vec![
        (SimTime::ZERO, 6),
        (SimTime::from_secs(60), 5),
        (SimTime::from_secs(180), 4),
        (SimTime::from_secs(400), 6),
    ]);
    for opts in [
        SystemOptions::spotserve(),
        SystemOptions::reparallelization(),
        SystemOptions::rerouting(),
    ] {
        let mut requests = long_tail_requests(11);
        requests.retain(|r| r.arrival < SimTime::from_secs(600));
        let scenario =
            Scenario::with_requests(ModelSpec::opt_6_7b(), trace.clone(), requests, 1.5, 11);
        let total = scenario.requests.len();
        let report = run(opts.clone(), scenario);
        let mut ids: Vec<u64> = report
            .latency
            .outcomes()
            .iter()
            .map(|o| o.request.id.0)
            .collect();
        ids.sort_unstable();
        let before = ids.len();
        ids.dedup();
        assert_eq!(
            before,
            ids.len(),
            "{:?}: duplicate completions",
            opts.policy
        );
        assert_audit_clean(&report, total);
        assert_eq!(
            ids.len() + report.unfinished,
            total,
            "{:?}: conservation of requests",
            opts.policy
        );
        assert_eq!(report.unfinished, 0, "{:?}: backlog drained", opts.policy);
    }
}

/// SpotServe's stateful recovery carries heterogeneous progress through a
/// preemption: under the continuous engine a volatile trace must still
/// migrate context (visible as migrated bytes in the config history)
/// rather than recompute everything.
#[test]
fn continuous_engine_still_migrates_context_statefully() {
    let scenario =
        Scenario::paper_stable(ModelSpec::gpt_20b(), AvailabilityTrace::paper_bs(), 0.35, 3);
    let report = run(SystemOptions::spotserve(), scenario);
    assert!(report.preemptions >= 1, "trace must preempt");
    assert!(
        report.config_changes.iter().any(|c| c.migrated_bytes > 0),
        "some transition must migrate context: {:?}",
        report.config_changes
    );
    assert_eq!(report.unfinished, 0);
}

/// The fixed-batch baseline stays a fully working engine (it remains the
/// comparison point in the benches) — including under preemptions.
#[test]
fn fixed_engine_baseline_survives_preemptions() {
    let scenario =
        Scenario::paper_stable(ModelSpec::gpt_20b(), AvailabilityTrace::paper_bs(), 0.35, 5);
    let total = scenario.requests.len();
    let report = run(
        SystemOptions::spotserve().with_engine(EngineMode::FixedBatch),
        scenario,
    );
    assert_eq!(report.latency.outcomes().len() + report.unfinished, total);
    assert_eq!(report.unfinished, 0);
    assert!(report.preemptions >= 1);
}
