//! The determinism gate: the end-to-end simulation must be bit-replayable.
//!
//! The iteration scheduler (and everything downstream of it) may never
//! introduce hidden nondeterminism — no HashMap iteration order, no
//! address-dependent tie-breaks, no wall-clock leakage. The gate runs the
//! same scenario twice with the same seed and asserts the two
//! [`RunReport`]s serialize to *byte-identical* canonical forms, floats
//! rendered via their IEEE-754 bit patterns so "close enough" can never
//! pass.

use std::fmt::Write as _;

use cloudsim::AvailabilityTrace;
use llmsim::ModelSpec;
use simkit::SimTime;
use spotserve::{EngineMode, RunReport, Scenario, ServingSystem, SystemOptions};

/// Canonical byte-exact rendering of everything a run produced.
fn canonical(report: &RunReport) -> String {
    let mut out = String::new();
    writeln!(out, "cost_usd_bits={:016x}", report.cost_usd.to_bits()).unwrap();
    writeln!(out, "unfinished={}", report.unfinished).unwrap();
    writeln!(out, "finished_at_us={}", report.finished_at.as_micros()).unwrap();
    writeln!(out, "preemptions={}", report.preemptions).unwrap();
    writeln!(out, "grants={}", report.grants).unwrap();
    writeln!(out, "latency_name={}", report.latency.name()).unwrap();
    for o in report.latency.outcomes() {
        writeln!(
            out,
            "outcome id={} arrival_us={} s_in={} s_out={} finished_us={}",
            o.request.id,
            o.request.arrival.as_micros(),
            o.request.s_in,
            o.request.s_out,
            o.finished.as_micros(),
        )
        .unwrap();
    }
    for c in &report.config_changes {
        writeln!(
            out,
            "config at_us={} config={:?} pause_us={} migrated={} reloaded={}",
            c.at.as_micros(),
            c.config,
            c.pause.as_micros(),
            c.migrated_bytes,
            c.reloaded_bytes,
        )
        .unwrap();
    }
    for (t, spot, od) in &report.fleet_timeline {
        writeln!(out, "fleet t_us={} spot={spot} od={od}", t.as_micros()).unwrap();
    }
    out
}

fn replay(opts: SystemOptions, seed: u64) -> String {
    let mut scenario = Scenario::paper_stable(
        ModelSpec::gpt_20b(),
        AvailabilityTrace::paper_bs(),
        0.35,
        seed,
    );
    scenario
        .requests
        .retain(|r| r.arrival < SimTime::from_secs(600));
    let report = ServingSystem::new(opts, scenario).run();
    canonical(&report)
}

/// Replay of the new scheduler paths: chunked prefill over a
/// long-prompt/short-prompt mix with tight-but-mixed SLOs, so the run
/// exercises chunk segmentation, SLO admission (admit/defer/reject), and
/// half-prefilled checkpoints through preemptions. Rejections are part of
/// the canonical form: a nondeterministic admission order would change
/// which deadlines get dropped.
fn replay_chunked_slo(seed: u64) -> String {
    use simkit::SimDuration;
    use workload::{LengthDist, WorkloadSpec};

    let spec = WorkloadSpec::paper_stable(1.2);
    let inputs = LengthDist::LongTail {
        common: 384,
        tail: 2048,
        tail_fraction: 0.2,
    };
    let outputs = LengthDist::Uniform { lo: 8, hi: 128 };
    let mut requests = spec.generate_with_lengths(
        &inputs,
        &outputs,
        &mut simkit::SimRng::new(seed).stream("arrivals"),
    );
    requests.retain(|r| r.arrival < SimTime::from_secs(420));
    // Alternate hopeless-tight and loose SLOs so admission exercises all
    // three verdicts: a 500 ms deadline is below even a solo prefill for
    // the long prompts (reject), while 900 s admits with deferrals.
    for (i, r) in requests.iter_mut().enumerate() {
        let slo = if i % 3 == 0 {
            SimDuration::from_micros(500_000)
        } else {
            SimDuration::from_secs(900)
        };
        *r = r.with_slo(slo);
    }
    let scenario = Scenario::with_requests(
        ModelSpec::opt_6_7b(),
        AvailabilityTrace::from_steps(vec![
            (SimTime::ZERO, 6),
            (SimTime::from_secs(90), 4),
            (SimTime::from_secs(240), 6),
        ]),
        requests,
        1.2,
        seed,
    );
    let report =
        ServingSystem::new(SystemOptions::spotserve().with_prefill_chunk(96), scenario).run();
    let mut out = canonical(&report);
    for r in &report.slo_rejections {
        writeln!(
            out,
            "slo_reject id={} arrival_us={} s_in={} s_out={} deadline_us={}",
            r.id,
            r.arrival.as_micros(),
            r.s_in,
            r.s_out,
            r.deadline.map(|d| d.as_micros()).unwrap_or(0),
        )
        .unwrap();
    }
    out
}

#[test]
fn same_seed_replays_byte_identical_for_every_policy() {
    for opts in [
        SystemOptions::spotserve(),
        SystemOptions::reparallelization(),
        SystemOptions::rerouting(),
        SystemOptions::on_demand_only(6),
    ] {
        let a = replay(opts.clone(), 99);
        let b = replay(opts.clone(), 99);
        assert!(!a.is_empty());
        assert_eq!(a, b, "{:?}: byte-identical replays", opts.policy);
    }
}

#[test]
fn both_engines_replay_byte_identical() {
    for engine in [EngineMode::ContinuousBatching, EngineMode::FixedBatch] {
        let opts = SystemOptions::spotserve().with_engine(engine);
        let a = replay(opts.clone(), 7);
        let b = replay(opts, 7);
        assert_eq!(a, b, "{engine:?}: byte-identical replays");
    }
}

#[test]
fn chunked_prefill_with_slo_admission_replays_byte_identical() {
    let a = replay_chunked_slo(17);
    let b = replay_chunked_slo(17);
    assert!(!a.is_empty());
    assert_eq!(a, b, "chunked + SLO paths must replay byte-identical");
    // The scenario actually exercises the new paths: at least one tight
    // deadline is dropped by admission.
    assert!(
        a.contains("slo_reject"),
        "scenario must exercise SLO rejection:\n{}",
        a.lines().take(5).collect::<Vec<_>>().join("\n")
    );
}

#[test]
fn different_seeds_actually_differ() {
    // Guards the gate itself: if `canonical` ever collapsed to a constant,
    // the identity assertions above would be vacuous.
    let a = replay(SystemOptions::spotserve(), 1);
    let b = replay(SystemOptions::spotserve(), 2);
    assert_ne!(a, b);
}
