//! The determinism gate: the end-to-end simulation must be bit-replayable.
//!
//! The iteration scheduler (and everything downstream of it) may never
//! introduce hidden nondeterminism — no HashMap iteration order, no
//! address-dependent tie-breaks, no wall-clock leakage. The gate runs the
//! same scenario twice with the same seed and asserts the two
//! [`RunReport`]s serialize to *byte-identical* canonical forms, floats
//! rendered via their IEEE-754 bit patterns so "close enough" can never
//! pass.

use cloudsim::AvailabilityTrace;
use llmsim::ModelSpec;
use simkit::SimTime;
use spotserve::{EngineMode, Scenario, ServingSystem, SystemOptions};

mod common;
use common::canonical;

fn replay(opts: SystemOptions, seed: u64) -> String {
    let mut scenario = Scenario::paper_stable(
        ModelSpec::gpt_20b(),
        AvailabilityTrace::paper_bs(),
        0.35,
        seed,
    );
    scenario
        .requests
        .retain(|r| r.arrival < SimTime::from_secs(600));
    let report = ServingSystem::new(opts, scenario).run();
    canonical(&report)
}

/// Replay of the new scheduler paths: chunked prefill over a
/// long-prompt/short-prompt mix with tight-but-mixed SLOs, so the run
/// exercises chunk segmentation, SLO admission (admit/defer/reject), and
/// half-prefilled checkpoints through preemptions. Rejections are part of
/// the canonical form: a nondeterministic admission order would change
/// which deadlines get dropped.
fn replay_chunked_slo(seed: u64) -> String {
    use simkit::SimDuration;
    use workload::{LengthDist, WorkloadSpec};

    let spec = WorkloadSpec::paper_stable(1.2);
    let inputs = LengthDist::LongTail {
        common: 384,
        tail: 2048,
        tail_fraction: 0.2,
    };
    let outputs = LengthDist::Uniform { lo: 8, hi: 128 };
    let mut requests = spec.generate_with_lengths(
        &inputs,
        &outputs,
        &mut simkit::SimRng::new(seed).stream("arrivals"),
    );
    requests.retain(|r| r.arrival < SimTime::from_secs(420));
    // Alternate hopeless-tight and loose SLOs so admission exercises all
    // three verdicts: a 500 ms deadline is below even a solo prefill for
    // the long prompts (reject), while 900 s admits with deferrals.
    for (i, r) in requests.iter_mut().enumerate() {
        let slo = if i % 3 == 0 {
            SimDuration::from_micros(500_000)
        } else {
            SimDuration::from_secs(900)
        };
        *r = r.with_slo(slo);
    }
    let scenario = Scenario::with_requests(
        ModelSpec::opt_6_7b(),
        AvailabilityTrace::from_steps(vec![
            (SimTime::ZERO, 6),
            (SimTime::from_secs(90), 4),
            (SimTime::from_secs(240), 6),
        ]),
        requests,
        1.2,
        seed,
    );
    let report =
        ServingSystem::new(SystemOptions::spotserve().with_prefill_chunk(96), scenario).run();
    // Rejections are part of the shared canonical form: a nondeterministic
    // admission order would change which deadlines get dropped.
    canonical(&report)
}

#[test]
fn same_seed_replays_byte_identical_for_every_policy() {
    for opts in [
        SystemOptions::spotserve(),
        SystemOptions::reparallelization(),
        SystemOptions::rerouting(),
        SystemOptions::on_demand_only(6),
    ] {
        let a = replay(opts.clone(), 99);
        let b = replay(opts.clone(), 99);
        assert!(!a.is_empty());
        assert_eq!(a, b, "{:?}: byte-identical replays", opts.policy);
    }
}

#[test]
fn both_engines_replay_byte_identical() {
    for engine in [EngineMode::ContinuousBatching, EngineMode::FixedBatch] {
        let opts = SystemOptions::spotserve().with_engine(engine);
        let a = replay(opts.clone(), 7);
        let b = replay(opts, 7);
        assert_eq!(a, b, "{engine:?}: byte-identical replays");
    }
}

#[test]
fn chunked_prefill_with_slo_admission_replays_byte_identical() {
    let a = replay_chunked_slo(17);
    let b = replay_chunked_slo(17);
    assert!(!a.is_empty());
    assert_eq!(a, b, "chunked + SLO paths must replay byte-identical");
    // The scenario actually exercises the new paths: at least one tight
    // deadline is dropped by admission.
    assert!(
        a.contains("slo_reject"),
        "scenario must exercise SLO rejection:\n{}",
        a.lines().take(5).collect::<Vec<_>>().join("\n")
    );
}

/// Replay of the multi-pool fleet-controller paths: three zones, one of
/// which collapses mid-run, served under `SpotHedge` (pool-spread
/// acquisition, churn estimator, per-pool billing). The canonical form
/// includes the per-pool cost breakdown, so a nondeterministic merge
/// order or billing accumulation would fail the gate.
fn replay_multi_pool(seed: u64) -> String {
    use cloudsim::{AvailabilityTrace as Tr, PoolSpec};
    use spotserve::FleetPolicy;

    let pools = vec![
        PoolSpec::new(
            "z0",
            Tr::from_steps(vec![(SimTime::ZERO, 6), (SimTime::from_secs(240), 0)]),
        ),
        PoolSpec::new("z1", Tr::constant(4)),
        PoolSpec::new("z2", Tr::constant(4)).with_spot_price(1.4),
    ];
    let mut scenario = Scenario::paper_stable(
        ModelSpec::opt_6_7b(),
        Tr::constant(0), // unused once pools are set
        1.0,
        seed,
    )
    .with_pools(pools);
    scenario
        .requests
        .retain(|r| r.arrival < SimTime::from_secs(420));
    let opts = SystemOptions::spotserve().with_fleet_policy(FleetPolicy::spot_hedge());
    let report = ServingSystem::new(opts, scenario).run();
    canonical(&report)
}

#[test]
fn multi_pool_hedge_replays_byte_identical() {
    let a = replay_multi_pool(29);
    let b = replay_multi_pool(29);
    assert!(!a.is_empty());
    assert_eq!(a, b, "multi-pool hedged replays must be byte-identical");
    assert!(
        a.contains("name=z2"),
        "the canonical form must carry the per-pool breakdown"
    );
}

/// Replay of the heterogeneous-fleet paths: three pools with *different*
/// SKUs (the A100 pool collapsing mid-run, a healthy cheap L4 pool, an
/// on-demand-only H100 pool) under the SKU/price-aware hedge. This drives
/// the per-SKU optimizer lanes, the SKU-aware KM edge costs, and the
/// cross-SKU migration; the canonical form carries the per-pool, per-SKU
/// cost bits, so any nondeterminism in lane selection or cross-fabric
/// pricing fails the gate.
fn replay_mixed_sku(seed: u64) -> String {
    use cloudsim::{AvailabilityTrace as Tr, InstanceType, PoolSpec};
    use spotserve::FleetPolicy;

    let pools = vec![
        PoolSpec::new(
            "a100",
            Tr::from_steps(vec![(SimTime::ZERO, 6), (SimTime::from_secs(240), 0)]),
        )
        .with_instance_type(InstanceType::a100()),
        PoolSpec::new("l4", Tr::constant(6)).with_instance_type(InstanceType::l4()),
        PoolSpec::new("h100", Tr::constant(0)).with_instance_type(InstanceType::h100()),
    ];
    let mut scenario = Scenario::paper_stable(
        ModelSpec::opt_6_7b(),
        AvailabilityTrace::constant(0), // unused once pools are set
        1.0,
        seed,
    )
    .with_pools(pools);
    scenario
        .requests
        .retain(|r| r.arrival < SimTime::from_secs(420));
    let opts = SystemOptions::spotserve().with_fleet_policy(FleetPolicy::cost_aware_hedge());
    let report = ServingSystem::new(opts, scenario).run();
    canonical(&report)
}

#[test]
fn mixed_sku_fleet_replays_byte_identical() {
    let a = replay_mixed_sku(31);
    let b = replay_mixed_sku(31);
    assert!(!a.is_empty());
    assert_eq!(a, b, "mixed-SKU replays must be byte-identical");
    for sku in ["p4d.24xlarge", "g6.12xlarge", "p5.48xlarge"] {
        assert!(
            a.contains(&format!("sku={sku}")),
            "canonical form must carry the per-pool SKU attribution ({sku})"
        );
    }
}

#[test]
fn explicit_base_sku_is_bit_exact_with_the_inherited_default() {
    // The heterogeneity axis must be purely additive: a pool that names
    // the scenario's base SKU explicitly takes the exact same code path
    // (no per-SKU lanes, no SKU-aware KM costs) as one that inherits it,
    // down to the last cost bit. This pins the pre-PR single-SKU behavior.
    use cloudsim::{AvailabilityTrace as Tr, InstanceType, PoolSpec};
    use spotserve::FleetPolicy;

    let replay = |explicit: bool| {
        let pools = vec![
            PoolSpec::new(
                "z0",
                Tr::from_steps(vec![(SimTime::ZERO, 6), (SimTime::from_secs(240), 0)]),
            ),
            PoolSpec::new("z1", Tr::constant(4)),
        ]
        .into_iter()
        .map(|p| {
            if explicit {
                p.with_instance_type(InstanceType::g4dn_12xlarge())
            } else {
                p
            }
        })
        .collect();
        let mut scenario = Scenario::paper_stable(
            ModelSpec::opt_6_7b(),
            AvailabilityTrace::constant(0), // unused once pools are set
            1.0,
            37,
        )
        .with_pools(pools);
        scenario
            .requests
            .retain(|r| r.arrival < SimTime::from_secs(420));
        let opts = SystemOptions::spotserve().with_fleet_policy(FleetPolicy::spot_hedge());
        canonical(&ServingSystem::new(opts, scenario).run())
    };
    let inherited = replay(false);
    let explicit = replay(true);
    assert!(!inherited.is_empty());
    assert_eq!(
        inherited, explicit,
        "explicitly naming the base SKU must not perturb a single bit"
    );
}

/// Replay of the price-dynamics paths: two pools whose spot prices follow
/// Ornstein–Uhlenbeck processes (one with a price–preemption coupling),
/// served under `CostPerToken` — parity masking, price-pressure feeding,
/// on-demand bridging, and path-integrated billing all in one run. The
/// canonical form carries every cost bit, so a nondeterministic price
/// path, kill draw, or steering order fails the gate.
fn replay_ou_priced(seed: u64) -> String {
    use cloudsim::{AvailabilityTrace as Tr, OuParams, PoolSpec, PriceModel};
    use spotserve::FleetPolicy;

    let volatile = OuParams {
        kill_coupling: 3.0,
        ..OuParams::around(1.9)
    };
    let pools = vec![
        PoolSpec::new("ou0", Tr::constant(6)).with_price(PriceModel::Ou(volatile)),
        PoolSpec::new("ou1", Tr::constant(4)).with_price(PriceModel::Ou(OuParams::around(2.1))),
    ];
    let mut scenario = Scenario::paper_stable(
        ModelSpec::opt_6_7b(),
        Tr::constant(0), // unused once pools are set
        1.0,
        seed,
    )
    .with_pools(pools);
    scenario
        .requests
        .retain(|r| r.arrival < SimTime::from_secs(420));
    let opts = SystemOptions::spotserve().with_fleet_policy(FleetPolicy::cost_per_token());
    let report = ServingSystem::new(opts, scenario).run();
    canonical(&report)
}

#[test]
fn ou_priced_cost_per_token_replays_byte_identical() {
    let a = replay_ou_priced(43);
    let b = replay_ou_priced(43);
    assert!(!a.is_empty());
    assert_eq!(
        a, b,
        "OU-priced CostPerToken replays must be byte-identical"
    );
    assert!(
        a.contains("name=ou1"),
        "the canonical form must carry the per-pool breakdown"
    );
}

#[test]
fn constant_price_model_is_bit_exact_with_the_legacy_setter() {
    // The price axis must be purely additive: `with_price(Constant(p))`
    // and the deprecated-in-spirit `with_spot_price(p)` shorthand take the
    // exact same code path — no path, no extra random draws, no re-quote
    // events — down to the last cost bit. This pins pre-dynamics replays.
    use cloudsim::{AvailabilityTrace as Tr, PoolSpec, PriceModel};
    use spotserve::FleetPolicy;

    let replay = |modeled: bool| {
        let cheap = PoolSpec::new("z1", Tr::constant(4));
        let pools = vec![
            PoolSpec::new(
                "z0",
                Tr::from_steps(vec![(SimTime::ZERO, 6), (SimTime::from_secs(240), 0)]),
            ),
            if modeled {
                cheap.with_price(PriceModel::Constant(1.4))
            } else {
                cheap.with_spot_price(1.4)
            },
        ];
        let mut scenario = Scenario::paper_stable(
            ModelSpec::opt_6_7b(),
            Tr::constant(0), // unused once pools are set
            1.0,
            47,
        )
        .with_pools(pools);
        scenario
            .requests
            .retain(|r| r.arrival < SimTime::from_secs(420));
        let opts = SystemOptions::spotserve().with_fleet_policy(FleetPolicy::spot_hedge());
        canonical(&ServingSystem::new(opts, scenario).run())
    };
    let legacy = replay(false);
    let modeled = replay(true);
    assert!(!legacy.is_empty());
    assert_eq!(
        legacy, modeled,
        "a Constant price model must not perturb a single bit"
    );
}

#[test]
fn cached_optimizer_replays_byte_identical_at_a_large_ceiling() {
    // PR 5: Algorithm 1 runs over a memoized candidate frontier with a
    // per-(N, α) decision memo. A large fleet ceiling stresses the
    // frontier's range lookups and pruning through full serving replays —
    // the cached optimizer may never make the run depend on its own query
    // history.
    let run = || {
        let mut opts = SystemOptions::spotserve();
        opts.max_instances = 64;
        replay(opts, 41)
    };
    let a = run();
    let b = run();
    assert!(!a.is_empty());
    assert_eq!(a, b, "cached-optimizer replays must be byte-identical");
}

/// The sharded scenario behind the parallel-core gate: eight pools (two
/// per shard), every pool re-quoting its spot price mid-run, one pool
/// collapsing and recovering — so the epoch loop crosses `SpotPriceStep`
/// barriers *and* migration-transition sync points, not just the final
/// drain.
fn sharded_canonical(threads: usize, shards: usize, seed: u64) -> String {
    use cloudsim::{AvailabilityTrace as Tr, PoolSpec, PriceModel, PriceTrace};
    use spotserve::ShardedSystem;

    let pools = (0..8)
        .map(|i| {
            let trace = if i == 2 {
                Tr::from_steps(vec![
                    (SimTime::ZERO, 4),
                    (SimTime::from_secs(200), 0),
                    (SimTime::from_secs(320), 4),
                ])
            } else {
                Tr::constant(4)
            };
            PoolSpec::new(format!("z{i}"), trace).with_price(PriceModel::Trace(
                PriceTrace::from_steps(vec![
                    (SimTime::ZERO, 1.9),
                    (SimTime::from_secs(150 + 10 * i), 2.1),
                    (SimTime::from_secs(300 + 10 * i), 1.8),
                ]),
            ))
        })
        .collect();
    let mut scenario = Scenario::paper_stable(
        ModelSpec::opt_6_7b(),
        AvailabilityTrace::constant(0), // unused once pools are set
        6.0,
        seed,
    )
    .with_pools(pools);
    scenario
        .requests
        .retain(|r| r.arrival < SimTime::from_secs(420));
    let report = ShardedSystem::new(SystemOptions::spotserve(), scenario, shards)
        .with_threads(threads)
        .run();
    let mut out = String::new();
    report.canonical_into(&mut out);
    out
}

#[test]
fn sharded_replay_is_thread_count_invariant() {
    // The parallel-core gate: the canonical output of a sharded run may
    // not depend on the worker-thread budget — 1-thread and max-thread
    // replays must be byte-identical, epoch log and per-shard reports
    // included.
    let one = sharded_canonical(1, 4, 53);
    let many = sharded_canonical(8, 4, 53);
    assert!(!one.is_empty());
    assert_eq!(one, many, "thread count may never change the answer");
    assert!(
        one.contains("epoch 1 "),
        "the scenario must cross at least two barriers:\n{}",
        one.lines().take(3).collect::<Vec<_>>().join("\n")
    );
}

#[test]
fn sharded_replay_replays_byte_identical() {
    let a = sharded_canonical(4, 4, 59);
    let b = sharded_canonical(4, 4, 59);
    assert_eq!(a, b, "sharded replays must be byte-identical run to run");
}

#[test]
fn telemetry_does_not_perturb_canonical_bytes() {
    // Observation must be free at the answer level: a run built with the
    // telemetry spine enabled renders the exact same canonical bytes as
    // the same run with the no-op recorder. (The stream itself is
    // deliberately outside the canonical form — it has its own digest.)
    let off = replay(SystemOptions::spotserve(), 61);
    let on = replay(SystemOptions::spotserve().with_telemetry(), 61);
    assert!(!off.is_empty());
    assert_eq!(off, on, "telemetry may never change the canonical output");
}

/// The telemetry-on JSONL rendering of the gate scenario.
fn replay_jsonl(seed: u64) -> String {
    let mut scenario = Scenario::paper_stable(
        ModelSpec::gpt_20b(),
        AvailabilityTrace::paper_bs(),
        0.35,
        seed,
    );
    scenario
        .requests
        .retain(|r| r.arrival < SimTime::from_secs(600));
    let mut report =
        ServingSystem::new(SystemOptions::spotserve().with_telemetry(), scenario).run();
    report
        .telemetry
        .take()
        .expect("run built with telemetry")
        .to_jsonl()
}

#[test]
fn telemetry_jsonl_replays_byte_identical() {
    // The exported stream is part of the replay contract: same seed, same
    // JSONL bytes — header, record order, every integer field.
    let a = replay_jsonl(67);
    let b = replay_jsonl(67);
    let header = a.lines().next().expect("stream has a header line");
    assert!(
        header.contains(r#""stream":"spotserve.telemetry""#),
        "header line identifies the stream: {header}"
    );
    assert!(a.lines().count() > 1, "stream carries records");
    assert_eq!(a, b, "telemetry JSONL must replay byte-identical");
}

#[test]
fn different_seeds_actually_differ() {
    // Guards the gate itself: if `canonical` ever collapsed to a constant,
    // the identity assertions above would be vacuous.
    let a = replay(SystemOptions::spotserve(), 1);
    let b = replay(SystemOptions::spotserve(), 2);
    assert_ne!(a, b);
}

#[test]
fn calm_fault_spec_is_bit_exact_with_no_spec() {
    // The chaos axis must be purely additive: a pool carrying an all-off
    // `FaultSpec::calm()` takes the exact same code path — no extra
    // random draws, no injected events — as one with no spec at all,
    // down to the last bit. This pins every pre-chaos replay.
    use cloudsim::{AvailabilityTrace as Tr, FaultSpec, PoolSpec};
    use spotserve::FleetPolicy;

    let replay = |calm: bool| {
        let pools = vec![
            PoolSpec::new(
                "z0",
                Tr::from_steps(vec![(SimTime::ZERO, 6), (SimTime::from_secs(240), 0)]),
            ),
            PoolSpec::new("z1", Tr::constant(4)),
        ]
        .into_iter()
        .map(|p| {
            if calm {
                p.with_faults(FaultSpec::calm())
            } else {
                p
            }
        })
        .collect();
        let mut scenario = Scenario::paper_stable(
            ModelSpec::opt_6_7b(),
            AvailabilityTrace::constant(0), // unused once pools are set
            1.0,
            71,
        )
        .with_pools(pools);
        scenario
            .requests
            .retain(|r| r.arrival < SimTime::from_secs(420));
        let opts = SystemOptions::spotserve().with_fleet_policy(FleetPolicy::spot_hedge());
        canonical(&ServingSystem::new(opts, scenario).run())
    };
    let bare = replay(false);
    let calm = replay(true);
    assert!(!bare.is_empty());
    assert_eq!(
        bare, calm,
        "an all-off fault spec must not perturb a single bit"
    );
}

/// Replay of the chaos paths: two pools under the standard fault pack
/// (unannounced kills, lost/truncated notices, lapsed grants, a degraded
/// link), served hedged with telemetry on. The canonical form carries the
/// fault and lapse counters; the stream's JSONL carries every injected
/// event — both must replay byte-identical.
fn replay_chaos(seed: u64) -> (String, String) {
    use cloudsim::{AvailabilityTrace as Tr, FaultSpec, PoolSpec};
    use spotserve::FleetPolicy;

    let pools = vec![
        PoolSpec::new("z0", Tr::constant(5)).with_faults(FaultSpec::pack(0.8).with_kill_rate(25.0)),
        PoolSpec::new("z1", Tr::constant(4)).with_faults(FaultSpec::pack(0.3)),
    ];
    let mut scenario = Scenario::paper_stable(
        ModelSpec::opt_6_7b(),
        AvailabilityTrace::constant(0), // unused once pools are set
        1.0,
        seed,
    )
    .with_pools(pools);
    scenario
        .requests
        .retain(|r| r.arrival < SimTime::from_secs(420));
    let opts = SystemOptions::spotserve()
        .with_fleet_policy(FleetPolicy::spot_hedge())
        .with_telemetry();
    let mut report = ServingSystem::new(opts, scenario).run();
    let jsonl = report
        .telemetry
        .take()
        .expect("run built with telemetry")
        .to_jsonl();
    (canonical(&report), jsonl)
}

#[test]
fn chaos_replays_byte_identical() {
    let (a, a_stream) = replay_chaos(73);
    let (b, b_stream) = replay_chaos(73);
    assert!(!a.is_empty());
    assert_eq!(a, b, "chaos replays must be byte-identical");
    assert_eq!(a_stream, b_stream, "chaos telemetry must replay exactly");
    assert!(
        a.lines()
            .any(|l| l.starts_with("faults=") && l != "faults=0"),
        "the kill channel must actually fire:\n{}",
        a.lines().take(8).collect::<Vec<_>>().join("\n")
    );
}

/// The sharded chaos gate: the PR 8 sharded scenario with fault packs on
/// half the pools. Injected kills, lapses and degraded links ride the
/// same event barriers as everything else, so the thread budget may not
/// change a byte.
fn sharded_chaos_canonical(threads: usize, shards: usize, seed: u64) -> String {
    use cloudsim::{AvailabilityTrace as Tr, FaultSpec, PoolSpec};
    use spotserve::ShardedSystem;

    let pools = (0..8)
        .map(|i| {
            let trace = if i == 2 {
                Tr::from_steps(vec![
                    (SimTime::ZERO, 4),
                    (SimTime::from_secs(200), 0),
                    (SimTime::from_secs(320), 4),
                ])
            } else {
                Tr::constant(4)
            };
            let pool = PoolSpec::new(format!("z{i}"), trace);
            if i % 2 == 0 {
                pool.with_faults(FaultSpec::pack(0.6))
            } else {
                pool
            }
        })
        .collect();
    let mut scenario = Scenario::paper_stable(
        ModelSpec::opt_6_7b(),
        AvailabilityTrace::constant(0), // unused once pools are set
        6.0,
        seed,
    )
    .with_pools(pools);
    scenario
        .requests
        .retain(|r| r.arrival < SimTime::from_secs(420));
    let report = ShardedSystem::new(SystemOptions::spotserve(), scenario, shards)
        .with_threads(threads)
        .run();
    let mut out = String::new();
    report.canonical_into(&mut out);
    out
}

#[test]
fn sharded_chaos_is_thread_count_invariant() {
    let one = sharded_chaos_canonical(1, 4, 79);
    let many = sharded_chaos_canonical(8, 4, 79);
    assert!(!one.is_empty());
    assert_eq!(one, many, "thread count may never change a chaos-on answer");
    let rerun = sharded_chaos_canonical(8, 4, 79);
    assert_eq!(many, rerun, "sharded chaos replays byte-identical");
}
