//! The determinism gate: the end-to-end simulation must be bit-replayable.
//!
//! The iteration scheduler (and everything downstream of it) may never
//! introduce hidden nondeterminism — no HashMap iteration order, no
//! address-dependent tie-breaks, no wall-clock leakage. The gate runs the
//! same scenario twice with the same seed and asserts the two
//! [`RunReport`]s serialize to *byte-identical* canonical forms, floats
//! rendered via their IEEE-754 bit patterns so "close enough" can never
//! pass.

use std::fmt::Write as _;

use cloudsim::AvailabilityTrace;
use llmsim::ModelSpec;
use simkit::SimTime;
use spotserve::{EngineMode, RunReport, Scenario, ServingSystem, SystemOptions};

/// Canonical byte-exact rendering of everything a run produced.
fn canonical(report: &RunReport) -> String {
    let mut out = String::new();
    writeln!(out, "cost_usd_bits={:016x}", report.cost_usd.to_bits()).unwrap();
    writeln!(out, "unfinished={}", report.unfinished).unwrap();
    writeln!(out, "finished_at_us={}", report.finished_at.as_micros()).unwrap();
    writeln!(out, "preemptions={}", report.preemptions).unwrap();
    writeln!(out, "grants={}", report.grants).unwrap();
    writeln!(out, "latency_name={}", report.latency.name()).unwrap();
    for o in report.latency.outcomes() {
        writeln!(
            out,
            "outcome id={} arrival_us={} s_in={} s_out={} finished_us={}",
            o.request.id,
            o.request.arrival.as_micros(),
            o.request.s_in,
            o.request.s_out,
            o.finished.as_micros(),
        )
        .unwrap();
    }
    for c in &report.config_changes {
        writeln!(
            out,
            "config at_us={} config={:?} pause_us={} migrated={} reloaded={}",
            c.at.as_micros(),
            c.config,
            c.pause.as_micros(),
            c.migrated_bytes,
            c.reloaded_bytes,
        )
        .unwrap();
    }
    for (t, spot, od) in &report.fleet_timeline {
        writeln!(out, "fleet t_us={} spot={spot} od={od}", t.as_micros()).unwrap();
    }
    out
}

fn replay(opts: SystemOptions, seed: u64) -> String {
    let mut scenario = Scenario::paper_stable(
        ModelSpec::gpt_20b(),
        AvailabilityTrace::paper_bs(),
        0.35,
        seed,
    );
    scenario
        .requests
        .retain(|r| r.arrival < SimTime::from_secs(600));
    let report = ServingSystem::new(opts, scenario).run();
    canonical(&report)
}

#[test]
fn same_seed_replays_byte_identical_for_every_policy() {
    for opts in [
        SystemOptions::spotserve(),
        SystemOptions::reparallelization(),
        SystemOptions::rerouting(),
        SystemOptions::on_demand_only(6),
    ] {
        let a = replay(opts.clone(), 99);
        let b = replay(opts.clone(), 99);
        assert!(!a.is_empty());
        assert_eq!(a, b, "{:?}: byte-identical replays", opts.policy);
    }
}

#[test]
fn both_engines_replay_byte_identical() {
    for engine in [EngineMode::ContinuousBatching, EngineMode::FixedBatch] {
        let opts = SystemOptions::spotserve().with_engine(engine);
        let a = replay(opts.clone(), 7);
        let b = replay(opts, 7);
        assert_eq!(a, b, "{engine:?}: byte-identical replays");
    }
}

#[test]
fn different_seeds_actually_differ() {
    // Guards the gate itself: if `canonical` ever collapsed to a constant,
    // the identity assertions above would be vacuous.
    let a = replay(SystemOptions::spotserve(), 1);
    let b = replay(SystemOptions::spotserve(), 2);
    assert_ne!(a, b);
}
