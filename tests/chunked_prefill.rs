//! Chunked-prefill scheduler invariants: the decode-stall bound, chunk-size
//! extremes, half-prefilled checkpoints through SpotServe migrations, and
//! the long-prompt/short-prompt serving axis the feature opens.

use std::collections::VecDeque;

use cloudsim::AvailabilityTrace;
use enginesim::{IterationScheduler, RequestRun};
use llmsim::{ModelSpec, SeqWork};
use parallelism::{ParallelConfig, PerfModel};
use simkit::{SimRng, SimTime};
use spotserve::{Scenario, ServingSystem, SystemOptions};
use workload::{LengthDist, Request, RequestId, WorkloadSpec};

mod common;
use common::assert_audit_clean;

fn perf() -> PerfModel {
    PerfModel::paper_defaults(ModelSpec::opt_6_7b())
}

fn cfg() -> ParallelConfig {
    ParallelConfig::new(1, 1, 4, 8)
}

fn kvbpt() -> u64 {
    ModelSpec::opt_6_7b().kv_bytes_per_token()
}

fn req(id: u64, s_in: u32, s_out: u32) -> Request {
    Request::new(RequestId(id), SimTime::ZERO, s_in, s_out)
}

fn scheduler(chunk: Option<u32>) -> IterationScheduler {
    IterationScheduler::new(cfg(), kvbpt(), u64::MAX).with_prefill_chunk(chunk)
}

/// Commit times of every output token of `victim`, measured by walking all
/// iteration boundaries of a scheduler run. The long request arrives at
/// `arrival` and is injected via the mid-segment interrupt path, exactly as
/// the serving system does it.
fn victim_token_times(chunk: Option<u32>, victim: Request, long: Request) -> Vec<SimTime> {
    let p = perf();
    let mut s = scheduler(chunk);
    let mut q: VecDeque<Request> = vec![victim].into_iter().collect();
    s.admit(&mut q, SimTime::ZERO, &p);
    let mut pending: VecDeque<Request> = VecDeque::new();
    let mut injected = false;
    let mut commits: Vec<SimTime> = Vec::new();
    let mut last_seen = 0u32;
    let mut t = SimTime::ZERO;
    while s.next_event().is_some() {
        // Inject the long request once the victim has a few tokens,
        // exactly as the serving system does: queue it and truncate the
        // running segment to the next boundary.
        if !injected && last_seen >= 3 {
            let arrival = SimTime::from_micros(t.as_micros() + 1);
            pending.push_back(long);
            s.interrupt_for_admission(arrival, &long, &p);
            injected = true;
            continue; // segment end may have moved
        }
        // Walk every boundary of this segment, recording victim commits —
        // breaking out as soon as the injection point is reached.
        while let Some(b) = s.next_boundary_after(t) {
            let committed = s
                .committed_per_request_at(b)
                .into_iter()
                .find(|(id, _)| *id == victim.id)
                .map(|(_, c)| c);
            if let Some(c) = committed {
                while last_seen < c {
                    last_seen += 1;
                    commits.push(b);
                }
            }
            t = b;
            if (!injected && last_seen >= 3) || b >= s.next_event().expect("segment running") {
                break;
            }
        }
        if !injected && last_seen >= 3 {
            continue; // inject before committing the rest of the segment
        }
        let end = s.next_event().expect("segment running");
        s.advance(end, &mut pending, &p);
    }
    commits
}

/// The tentpole bound: with chunked prefill on, a decoding request's
/// inter-token gap never exceeds one mixed pass carrying at most one chunk
/// of a neighbour's prompt — and the worst gap improves by a wide margin
/// over the monolithic-prefill engine, which stalls the decoder for the
/// whole 4096-token prompt.
#[test]
fn decode_stall_is_bounded_by_one_chunk() {
    let victim = req(0, 256, 64);
    let long = req(1, 4096, 8);
    let chunk = 128u32;

    let max_gap = |times: &[SimTime]| {
        times
            .windows(2)
            .map(|w| w[1].saturating_since(w[0]))
            .max()
            .expect("victim produced tokens")
    };

    let chunked = victim_token_times(Some(chunk), victim, long);
    let mono = victim_token_times(None, victim, long);
    assert_eq!(chunked.len(), 64, "every victim token commits (chunked)");
    assert_eq!(mono.len(), 64, "every victim token commits (monolithic)");

    // Skip the victim's own prefill pass (first token) when bounding gaps.
    let g_chunked = max_gap(&chunked[1..]);
    let g_mono = max_gap(&mono[1..]);

    // Bound: the costliest possible pass is the long prompt's final chunk
    // alongside the victim's decode at its peak context.
    let p = perf();
    let bound = p.mixed_iteration_time(
        &cfg(),
        &[
            SeqWork {
                new_tokens: chunk,
                ctx: long.s_in,
            },
            SeqWork::decode(victim.s_in + victim.s_out),
        ],
    );
    assert!(
        g_chunked <= bound,
        "chunked decode stall {g_chunked} exceeds one-chunk bound {bound}"
    );
    // Improvement: the monolithic engine stalls the victim for the whole
    // 4096-token prefill pass.
    assert!(
        g_chunked.as_secs_f64() < g_mono.as_secs_f64() * 0.5,
        "chunked worst gap {g_chunked} must be far below monolithic {g_mono}"
    );
}

/// Chunk-size extremes: `chunk >= s_in` degenerates to monolithic prefill
/// (bit-identical completion — pinned with an *odd* `s_out`, where the
/// final chunk's segment routing is what keeps the mid-context rounding
/// identical), `chunk == 1` runs one prompt token per pass.
#[test]
fn chunk_size_extremes_degenerate_as_expected() {
    let p = perf();
    let reqs: Vec<Request> = (0..4).map(|i| req(i, 384, 49)).collect();
    let finish = |chunk: Option<u32>| {
        let mut s = scheduler(chunk);
        let mut q: VecDeque<Request> = reqs.clone().into_iter().collect();
        s.admit(&mut q, SimTime::ZERO, &p);
        let mut end = SimTime::ZERO;
        while let Some(e) = s.next_event() {
            end = e;
            s.advance(e, &mut q, &p);
        }
        end
    };
    // chunk >= prompt: bit-identical to the monolithic engine.
    assert_eq!(finish(Some(384)), finish(None));
    assert_eq!(finish(Some(10_000)), finish(None));

    // chunk == 1: one prompt token per pass; the final token rides the
    // first iteration of the closing segment.
    let mut s = scheduler(Some(1));
    let mut q: VecDeque<Request> = vec![req(9, 32, 4)].into_iter().collect();
    s.admit(&mut q, SimTime::ZERO, &p);
    let mut passes = 0;
    while !s.is_idle() {
        if passes == 31 {
            assert_eq!(s.running()[0].prefilled(), 31, "one prompt token per pass");
            assert!(s.running()[0].needs_prefill());
        }
        let e = s.next_event().unwrap();
        s.advance(e, &mut q, &p);
        passes += 1;
    }
    assert_eq!(passes, 32, "31 single-token passes + the closing segment");
}

/// A half-prefilled checkpoint is token-exact: freezing after `k` chunk
/// passes and restoring under a different mesh re-runs exactly the missing
/// chunks, never the cached ones, and the request still produces all its
/// output tokens.
#[test]
fn half_prefilled_checkpoint_restores_token_exact() {
    let p = perf();
    let chunk = 256u32;
    let long = req(0, 2048, 16);
    let companion = req(1, 256, 64);
    let mut s = scheduler(Some(chunk));
    let mut q: VecDeque<Request> = vec![companion, long].into_iter().collect();
    s.admit(&mut q, SimTime::ZERO, &p);
    // Run 3 chunk passes of the long prompt.
    for _ in 0..3 {
        let e = s.next_event().unwrap();
        s.advance(e, &mut q, &p);
    }
    let freeze_at = s.next_event().unwrap();
    let records = s.freeze(freeze_at);
    let long_rec = records
        .iter()
        .find(|r| r.request().id == long.id)
        .copied()
        .expect("long request frozen");
    // Exactly the passes that ran are cached — the companion's prefill
    // shares pass 1, so the long prompt has advanced 4 chunk passes by the
    // 4th boundary; assert against whatever the scheduler reports and that
    // it is a whole number of chunks, mid-prompt.
    assert!(long_rec.prefilled() > 0 && long_rec.prefilled() < long.s_in);
    assert_eq!(long_rec.prefilled() % chunk, 0, "chunk-exact checkpoint");
    assert_eq!(long_rec.committed(), 0);

    // Restore on a different mesh; the prefill continues, not restarts.
    let new_cfg = ParallelConfig::new(1, 2, 2, 8);
    let missing = (long.s_in - long_rec.prefilled()).div_ceil(chunk);
    let (mut r, dropped) = IterationScheduler::new(new_cfg, kvbpt(), u64::MAX)
        .with_prefill_chunk(Some(chunk))
        .restore_within_budget(records, freeze_at, &p);
    assert!(dropped.is_empty());
    let mut passes = 0;
    let mut retired = Vec::new();
    // Advance until the long prompt's prefill is complete (it may retire
    // within the same closing segment that finishes the final chunk).
    while r
        .running()
        .iter()
        .find(|x| x.request().id == long.id)
        .is_some_and(RequestRun::needs_prefill)
    {
        let e = r.next_event().unwrap();
        retired.extend(r.advance(e, &mut VecDeque::new(), &p));
        passes += 1;
    }
    assert_eq!(passes, missing, "only the missing chunks re-run");
    // Drive to completion: every output token is produced exactly once.
    while let Some(e) = r.next_event() {
        retired.extend(r.advance(e, &mut VecDeque::new(), &p));
    }
    assert!(retired.contains(&long));
    assert!(retired.contains(&companion));
}

fn long_short_mix(seed: u64) -> Vec<Request> {
    let spec = WorkloadSpec::paper_stable(1.0);
    let inputs = LengthDist::LongTail {
        common: 256,
        tail: 3072,
        tail_fraction: 0.15,
    };
    let outputs = LengthDist::Uniform { lo: 16, hi: 128 };
    let mut reqs =
        spec.generate_with_lengths(&inputs, &outputs, &mut SimRng::new(seed).stream("arrivals"));
    reqs.retain(|r| r.arrival < SimTime::from_secs(420));
    reqs
}

/// Whole-system run with chunked prefill through a preempting trace: a
/// migration lands while long prompts are mid-prefill, and the system still
/// conserves every request (no loss, no double completion) and drains.
#[test]
fn chunked_prefill_survives_spotserve_migrations() {
    let trace = AvailabilityTrace::from_steps(vec![
        (SimTime::ZERO, 6),
        (SimTime::from_secs(60), 5),
        (SimTime::from_secs(180), 4),
        (SimTime::from_secs(330), 6),
    ]);
    let requests = long_short_mix(23);
    let total = requests.len();
    let scenario = Scenario::with_requests(ModelSpec::opt_6_7b(), trace, requests, 1.0, 23);
    let report =
        ServingSystem::new(SystemOptions::spotserve().with_prefill_chunk(128), scenario).run();
    assert!(report.preemptions >= 2, "trace must preempt");
    assert_eq!(report.unfinished, 0, "backlog drains");
    let mut ids: Vec<u64> = report
        .latency
        .outcomes()
        .iter()
        .map(|o| o.request.id.0)
        .collect();
    ids.sort_unstable();
    let n = ids.len();
    ids.dedup();
    assert_eq!(n, ids.len(), "no double completion");
    assert_eq!(n, total, "no token loss: every request completes");
    assert_audit_clean(&report, total);
}

/// The serving-level payoff: on the long-prompt/short-prompt mix, chunked
/// prefill improves the p99 latency of *short* requests versus the
/// unchunked continuous engine (they no longer queue behind monolithic
/// 3072-token prefills).
#[test]
fn chunked_prefill_improves_short_request_tail() {
    let mut p99_short = Vec::new();
    for chunk in [Some(128u32), None] {
        let requests = long_short_mix(31);
        let scenario = Scenario::with_requests(
            ModelSpec::opt_6_7b(),
            AvailabilityTrace::constant(4),
            requests,
            1.0,
            31,
        );
        let mut opts = SystemOptions::spotserve();
        if let Some(c) = chunk {
            opts = opts.with_prefill_chunk(c);
        }
        let report = ServingSystem::new(opts, scenario).run();
        assert_eq!(report.unfinished, 0);
        let mut lat: Vec<f64> = report
            .latency
            .outcomes()
            .iter()
            .filter(|o| o.request.s_in <= 256)
            .map(|o| o.latency().as_secs_f64())
            .collect();
        lat.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let p99 = lat[((lat.len() as f64 - 1.0) * 0.99) as usize];
        p99_short.push(p99);
    }
    assert!(
        p99_short[0] < p99_short[1],
        "chunked p99 {} must beat unchunked {} on short requests",
        p99_short[0],
        p99_short[1]
    );
}

/// Half-prefilled records sort behind committed ones when a shrunken
/// configuration cannot hold the whole checkpoint.
#[test]
fn shrink_keeps_deepest_progress_first() {
    let p = perf();
    let records = vec![
        RequestRun::resumed_partial(req(0, 1024, 32), 512, 0),
        RequestRun::resumed(req(1, 512, 32), 7),
        RequestRun::resumed_partial(req(2, 1024, 32), 256, 0),
    ];
    let tiny = ParallelConfig::new(1, 1, 4, 2);
    let (s, dropped) = IterationScheduler::new(tiny, kvbpt(), u64::MAX)
        .with_prefill_chunk(Some(256))
        .restore_within_budget(records, SimTime::ZERO, &p);
    assert_eq!(s.in_flight(), 2);
    // Committed tokens outrank prefill depth; deeper prefill outranks
    // shallower.
    assert!(s.running().iter().any(|r| r.request().id == RequestId(1)));
    assert!(s.running().iter().any(|r| r.request().id == RequestId(0)));
    assert_eq!(dropped, vec![req(2, 1024, 32)]);
}
