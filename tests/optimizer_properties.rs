//! Property tests for Algorithm 1's invariants over the whole input space,
//! and for the scheduler's SLO-aware admission guard.

use std::collections::VecDeque;

use enginesim::IterationScheduler;
use llmsim::ModelSpec;
use parallelism::{ParallelConfig, PerfModel};
use proptest::prelude::*;
use simkit::{SimDuration, SimTime};
use spotserve::{ConfigOptimizer, EngineMode};
use workload::{Request, RequestId};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Whatever the fleet and load, a `now` decision always fits the fleet.
    #[test]
    fn now_config_always_fits_fleet(
        n in 0u32..20,
        alpha in 0.0f64..3.0,
    ) {
        let opt = ConfigOptimizer::paper_defaults(ModelSpec::gpt_20b(), 16);
        let d = opt.decide(n, alpha);
        if let Some(c) = d.now {
            prop_assert!(c.instances_needed(4) <= n, "{c} needs more than {n}");
        }
    }

    /// If any feasible-now configuration sustains α, the chosen one does.
    #[test]
    fn sustaining_choice_when_possible(
        n in 3u32..16,
        alpha in 0.05f64..1.0,
    ) {
        let opt = ConfigOptimizer::paper_defaults(ModelSpec::gpt_20b(), 16);
        let any_sustains = opt
            .feasible(n)
            .into_iter()
            .any(|c| opt.perf().throughput(&c) >= alpha);
        let d = opt.decide(n, alpha);
        if any_sustains {
            let c = d.now.expect("feasible set non-empty");
            prop_assert!(
                opt.perf().throughput(&c) >= alpha,
                "{c} does not sustain {alpha}"
            );
        }
    }

    /// The incumbent bias never selects an infeasible or overloaded config.
    #[test]
    fn incumbent_bias_is_safe(
        n in 3u32..16,
        alpha in 0.05f64..1.0,
        inc_idx in 0usize..64,
    ) {
        let opt = ConfigOptimizer::paper_defaults(ModelSpec::gpt_20b(), 16);
        let feasible = opt.feasible(16);
        prop_assume!(!feasible.is_empty());
        let incumbent = feasible[inc_idx % feasible.len()];
        let with = opt.decide_with_incumbent(n, alpha, Some(incumbent));
        let without = opt.decide(n, alpha);
        if let Some(c) = with.now {
            prop_assert!(c.instances_needed(4) <= n);
            // Keeping the incumbent is only allowed when it sustains α,
            // so the choice can never be worse than 15% off the optimum
            // unless nothing sustains α at all.
            if let Some(best) = without.now {
                if opt.perf().throughput(&best) >= alpha && c == incumbent && c != best {
                    prop_assert!(opt.perf().throughput(&c) >= alpha);
                }
            }
        }
    }

    /// Positive instance deltas always accompany an unmet target.
    #[test]
    fn delta_consistent_with_target(
        n in 0u32..20,
        alpha in 0.0f64..2.0,
    ) {
        let opt = ConfigOptimizer::paper_defaults(ModelSpec::llama_30b(), 16);
        let d = opt.decide(n, alpha);
        match d.target {
            Some(t) => prop_assert_eq!(
                d.instance_delta,
                t.instances_needed(4) as i64 - n as i64
            ),
            None => prop_assert_eq!(d.instance_delta, -(n as i64)),
        }
    }

    /// The PR 5 tentpole contract: frontier-backed decisions — memoized
    /// range lookups over precomputed, Pareto-pruned candidates — are
    /// **bit-identical** with the pre-frontier fresh-enumeration reference
    /// implementations, across fleet size, arrival rate, engine mode,
    /// model, SLO target, and incumbent bias. Each query runs twice so the
    /// memo-hit path is held to the same identity.
    #[test]
    fn frontier_decisions_equal_fresh_enumeration(
        n in 0u32..20,
        alpha_millis in 0u32..2000,
        model_sel in 0usize..8,
        engine_sel in 0usize..2,
        slo_secs in 1u64..300,
        inc_idx in 0usize..64,
    ) {
        let models = ModelSpec::paper_models();
        let engine = [EngineMode::FixedBatch, EngineMode::ContinuousBatching][engine_sel];
        let opt = ConfigOptimizer::paper_defaults(
            models[model_sel % models.len()].clone(),
            16,
        )
        .with_engine_mode(engine);
        let alpha = alpha_millis as f64 / 1000.0;
        let reference = opt.decide_reference(n, alpha);
        prop_assert_eq!(opt.decide(n, alpha), reference, "decide ({engine:?})");
        prop_assert_eq!(opt.decide(n, alpha), reference, "memo hit");
        let slo = SimDuration::from_secs(slo_secs);
        let slo_ref = opt.decide_slo_reference(n, alpha, slo);
        prop_assert_eq!(opt.decide_slo(n, alpha, slo), slo_ref, "decide_slo");
        prop_assert_eq!(opt.decide_slo(n, alpha, slo), slo_ref, "slo memo hit");
        let feasible = opt.feasible(16);
        if !feasible.is_empty() {
            let inc = feasible[inc_idx % feasible.len()];
            prop_assert_eq!(
                opt.decide_with_incumbent(n, alpha, Some(inc)),
                opt.decide_with_incumbent_reference(n, alpha, Some(inc)),
                "incumbent {inc}"
            );
        }
    }

    /// The continuous-batching estimator never reports a lower peak
    /// throughput than the fixed-batch one, whatever the configuration: an
    /// iteration-level slot can only turn over faster than a
    /// run-to-completion batch.
    #[test]
    fn continuous_estimator_dominates_fixed_throughput(
        n in 3u32..16,
        idx in 0usize..64,
    ) {
        let opt = ConfigOptimizer::paper_defaults(ModelSpec::gpt_20b(), 16);
        let feasible = opt.feasible(n);
        prop_assume!(!feasible.is_empty());
        let c = feasible[idx % feasible.len()];
        prop_assert!(
            opt.perf().throughput_continuous(&c) >= opt.perf().throughput(&c),
            "{c}"
        );
    }
}

// ---- SLO-aware admission properties -----------------------------------

fn perf() -> PerfModel {
    PerfModel::paper_defaults(ModelSpec::opt_6_7b())
}

fn kvbpt() -> u64 {
    ModelSpec::opt_6_7b().kv_bytes_per_token()
}

/// Drives one scheduler to idle; returns `(retire_time, request)` pairs and
/// the rejected requests. When every queued request defers on an idle
/// engine (worst-case projection busts, best-case does not), the harness
/// lets simulated time pass — exactly what happens in the serving system —
/// until each one is admitted or becomes certainly hopeless and rejects.
fn drive_to_idle(
    sched: &mut IterationScheduler,
    pending: &mut VecDeque<Request>,
    p: &PerfModel,
) -> (Vec<(SimTime, Request)>, Vec<Request>) {
    let mut retired = Vec::new();
    let mut rejected = Vec::new();
    let mut clock = SimTime::ZERO;
    let mut guard = 0u32;
    loop {
        guard += 1;
        assert!(guard < 1_000_000, "scheduler failed to make progress");
        match sched.next_event() {
            Some(end) => {
                clock = end;
                for r in sched.advance(end, pending, p) {
                    retired.push((end, r));
                }
                rejected.extend(sched.take_rejected());
            }
            None => {
                if pending.is_empty() {
                    break;
                }
                let before = pending.len();
                sched.admit(pending, clock, p);
                rejected.extend(sched.take_rejected());
                if sched.next_event().is_none() && pending.len() == before {
                    // Everything deferred on an idle engine: wait. Each
                    // deferred deadline eventually admits or turns
                    // certainly-hopeless (rejects), so this terminates.
                    clock += SimDuration::from_secs(5);
                }
            }
        }
    }
    (retired, rejected)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The admission guard's end-to-end contract: whatever the workload
    /// mix, chunk size, and deadlines, **every admitted deadline-carrying
    /// request retires by its deadline** — admission never lets a request
    /// in whose projected `l_req` would bust its own SLO or an
    /// already-admitted request's. (Rejected requests are exactly the
    /// hopeless ones; deferred ones wait in the queue.)
    #[test]
    fn admitted_deadlines_are_always_met(
        shapes in prop::collection::vec((32u32..1024, 1u32..96, 30u64..2000), 8),
        chunk_sel in 0usize..4,
        batch in 2u32..9,
    ) {
        let shapes: Vec<(u32, u32, u64)> = shapes;
        let p = perf();
        let chunk = [Some(32), Some(128), Some(512), None][chunk_sel];
        let cfg = ParallelConfig::new(1, 1, 4, batch);
        let mut sched = IterationScheduler::new(cfg, kvbpt(), u64::MAX)
            .with_prefill_chunk(chunk);
        let mut pending: VecDeque<Request> = shapes
            .iter()
            .enumerate()
            .map(|(i, &(s_in, s_out, slo))| {
                Request::new(RequestId(i as u64), SimTime::ZERO, s_in, s_out)
                    .with_slo(SimDuration::from_secs(slo))
            })
            .collect();
        let total = pending.len();
        let (retired, rejected) = drive_to_idle(&mut sched, &mut pending, &p);
        prop_assert_eq!(retired.len() + rejected.len(), total, "conservation");
        for (at, r) in &retired {
            let deadline = r.deadline.expect("all carry deadlines");
            prop_assert!(
                *at <= deadline,
                "{} admitted but retired at {at} past deadline {deadline}",
                r.id
            );
        }
    }

    /// Admission order is deterministic and FIFO under equal deadlines:
    /// identical queues admit identical prefixes in queue order, twice.
    #[test]
    fn admission_order_is_deterministic_under_equal_deadlines(
        count in 1usize..10,
        s_in in 64u32..768,
        s_out in 4u32..64,
        slo in 60u64..1200,
        batch in 2u32..9,
    ) {
        let p = perf();
        let cfg = ParallelConfig::new(1, 1, 4, batch);
        let build_queue = || -> VecDeque<Request> {
            (0..count)
                .map(|i| {
                    Request::new(RequestId(i as u64), SimTime::ZERO, s_in, s_out)
                        .with_slo(SimDuration::from_secs(slo))
                })
                .collect()
        };
        let admit_ids = |q: &mut VecDeque<Request>| -> Vec<u64> {
            let mut s = IterationScheduler::new(cfg, kvbpt(), u64::MAX)
                .with_prefill_chunk(Some(64));
            s.admit(q, SimTime::ZERO, &p);
            s.running().iter().map(|r| r.request().id.0).collect()
        };
        let mut q1 = build_queue();
        let mut q2 = build_queue();
        let a = admit_ids(&mut q1);
        let b = admit_ids(&mut q2);
        prop_assert_eq!(&a, &b, "identical inputs admit identically");
        // FIFO among equals: the admitted set is a prefix in id order.
        let expect: Vec<u64> = (0..a.len() as u64).collect();
        prop_assert_eq!(a, expect, "equal deadlines admit in queue order");
        prop_assert_eq!(q1, q2);
    }
}

// ---- The re-derived l_req estimator changes Algorithm 1's choices ------

/// The documented scenario (see README "Engine-aware Algorithm 1"):
/// GPT-20B, 12 usable instances, α = 0.35 req/s. The fixed-batch estimator
/// pays a batch-fill delay of `(B−1)/2α` and so picks a small batch,
/// `(D=3, P=2, M=8, B=2)`; the continuous estimator knows slots turn over
/// at iteration granularity and picks the full `B=8` capacity on the same
/// mesh — more headroom at the same latency. FixedBatch pricing is
/// untouched, so paper-exact figures stay bit-identical.
#[test]
fn continuous_estimator_changes_the_algorithm1_choice() {
    let fixed = ConfigOptimizer::paper_defaults(ModelSpec::gpt_20b(), 16);
    let cont = ConfigOptimizer::paper_defaults(ModelSpec::gpt_20b(), 16)
        .with_engine_mode(EngineMode::ContinuousBatching);

    let df = fixed.decide(12, 0.35).now.expect("feasible");
    let dc = cont.decide(12, 0.35).now.expect("feasible");
    assert_eq!(
        (df.data, df.pipeline, df.tensor, df.batch),
        (3, 2, 8, 2),
        "fixed-batch Algorithm 1 pick"
    );
    assert_eq!(
        (dc.data, dc.pipeline, dc.tensor, dc.batch),
        (3, 2, 8, 8),
        "continuous Algorithm 1 pick: same mesh, full batch capacity"
    );
    assert_ne!(df, dc, "the re-derived estimator changes the choice");

    // And the default-constructed optimizer still prices with the paper's
    // fixed-batch formulas (figure comparisons stay bit-exact).
    assert_eq!(fixed.engine_mode(), EngineMode::FixedBatch);
    assert_eq!(
        fixed.estimated_latency(&df, 0.35),
        fixed.perf().request_latency(&df, 0.35)
    );
}
