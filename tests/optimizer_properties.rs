//! Property tests for Algorithm 1's invariants over the whole input space.

use llmsim::ModelSpec;
use proptest::prelude::*;
use spotserve::ConfigOptimizer;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Whatever the fleet and load, a `now` decision always fits the fleet.
    #[test]
    fn now_config_always_fits_fleet(
        n in 0u32..20,
        alpha in 0.0f64..3.0,
    ) {
        let opt = ConfigOptimizer::paper_defaults(ModelSpec::gpt_20b(), 16);
        let d = opt.decide(n, alpha);
        if let Some(c) = d.now {
            prop_assert!(c.instances_needed(4) <= n, "{c} needs more than {n}");
        }
    }

    /// If any feasible-now configuration sustains α, the chosen one does.
    #[test]
    fn sustaining_choice_when_possible(
        n in 3u32..16,
        alpha in 0.05f64..1.0,
    ) {
        let opt = ConfigOptimizer::paper_defaults(ModelSpec::gpt_20b(), 16);
        let any_sustains = opt
            .feasible(n)
            .into_iter()
            .any(|c| opt.perf().throughput(&c) >= alpha);
        let d = opt.decide(n, alpha);
        if any_sustains {
            let c = d.now.expect("feasible set non-empty");
            prop_assert!(
                opt.perf().throughput(&c) >= alpha,
                "{c} does not sustain {alpha}"
            );
        }
    }

    /// The incumbent bias never selects an infeasible or overloaded config.
    #[test]
    fn incumbent_bias_is_safe(
        n in 3u32..16,
        alpha in 0.05f64..1.0,
        inc_idx in 0usize..64,
    ) {
        let opt = ConfigOptimizer::paper_defaults(ModelSpec::gpt_20b(), 16);
        let feasible = opt.feasible(16);
        prop_assume!(!feasible.is_empty());
        let incumbent = feasible[inc_idx % feasible.len()];
        let with = opt.decide_with_incumbent(n, alpha, Some(incumbent));
        let without = opt.decide(n, alpha);
        if let Some(c) = with.now {
            prop_assert!(c.instances_needed(4) <= n);
            // Keeping the incumbent is only allowed when it sustains α,
            // so the choice can never be worse than 15% off the optimum
            // unless nothing sustains α at all.
            if let Some(best) = without.now {
                if opt.perf().throughput(&best) >= alpha && c == incumbent && c != best {
                    prop_assert!(opt.perf().throughput(&c) >= alpha);
                }
            }
        }
    }

    /// Positive instance deltas always accompany an unmet target.
    #[test]
    fn delta_consistent_with_target(
        n in 0u32..20,
        alpha in 0.0f64..2.0,
    ) {
        let opt = ConfigOptimizer::paper_defaults(ModelSpec::llama_30b(), 16);
        let d = opt.decide(n, alpha);
        match d.target {
            Some(t) => prop_assert_eq!(
                d.instance_delta,
                t.instances_needed(4) as i64 - n as i64
            ),
            None => prop_assert_eq!(d.instance_delta, -(n as i64)),
        }
    }
}
