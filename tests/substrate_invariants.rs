//! Cross-crate invariants: properties that must hold when substrates
//! compose (cloud ↔ billing, memory ↔ enumeration, KM ↔ device mapping,
//! planner ↔ timeline).

use cloudsim::{AvailabilityTrace, CloudConfig, CloudSim, GpuSpec, InstanceKind};
use kmatch::{exhaustive, max_weight_assignment, WeightMatrix};
use llmsim::{calibration, MemoryModel, ModelSpec};
use parallelism::{enumerate_configs, ConfigSpace, ParallelConfig, PerfModel};
use proptest::prelude::*;
use simkit::{SimRng, SimTime};

#[test]
fn cloud_never_exceeds_trace_capacity() {
    let trace = AvailabilityTrace::paper_bs();
    let mut cloud = CloudSim::new(CloudConfig::default(), trace.clone(), 5);
    cloud.request_spot(SimTime::ZERO, 20);
    let mut max_seen = 0;
    while let Some((t, _)) = cloud.pop_next() {
        let live = cloud
            .fleet()
            .filter(|i| i.kind == InstanceKind::Spot && i.kill_at.is_none())
            .count() as u32;
        max_seen = max_seen.max(live);
        assert!(
            live <= trace.capacity_at(t),
            "at {t}: {live} spot instances > capacity {}",
            trace.capacity_at(t)
        );
    }
    assert!(max_seen > 0, "something was granted");
}

#[test]
fn billing_matches_hand_computation_on_simple_run() {
    let mut cloud = CloudSim::new(CloudConfig::default(), AvailabilityTrace::constant(2), 1);
    let ids = cloud.prewarm_spot(2);
    assert_eq!(ids.len(), 2);
    let end = SimTime::from_secs(1800);
    for id in ids {
        cloud.release(end, id);
    }
    // 2 instances × 0.5 h × 1.9 $/h.
    assert!((cloud.meter().total_usd(end) - 1.9).abs() < 1e-9);
}

#[test]
fn every_enumerated_config_has_positive_throughput_estimate() {
    for model in ModelSpec::paper_models() {
        let perf = PerfModel::paper_defaults(model.clone());
        let configs = enumerate_configs(
            &model,
            &MemoryModel::default(),
            &GpuSpec::t4(),
            &ConfigSpace::default(),
            64,
        );
        assert!(!configs.is_empty());
        for c in configs {
            let phi = perf.throughput(&c);
            assert!(phi.is_finite() && phi > 0.0, "{}: {c} -> {phi}", model.name);
        }
    }
}

#[test]
fn calibration_anchors_survive_composition() {
    // Table 1 anchors reproduced through the PerfModel layer.
    for (name, (p, m), secs) in calibration::TABLE1_ANCHORS {
        let model = ModelSpec::paper_models()
            .into_iter()
            .find(|ms| ms.name == name)
            .unwrap();
        let perf = PerfModel::paper_defaults(model);
        let c = ParallelConfig::new(1, p, m, 1);
        let got = perf.exec_latency(&c).as_secs_f64();
        assert!((got - secs).abs() / secs < 0.02, "{name}: {got} vs {secs}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn km_equals_bruteforce_through_public_api(
        seed in 0u64..1000,
        rows in 1usize..6,
        cols in 1usize..6,
    ) {
        let mut rng = SimRng::new(seed).stream("w");
        let w = WeightMatrix::from_fn(rows, cols, |_, _| rng.below(1_000) as i64);
        prop_assert_eq!(
            max_weight_assignment(&w).total_weight,
            exhaustive::best_assignment(&w).total_weight
        );
    }

    #[test]
    fn generated_traces_always_replayable(seed in 0u64..500) {
        let gen = cloudsim::TraceGenerator::default();
        let trace = gen.generate(&mut SimRng::new(seed).stream("t"));
        let mut cloud = CloudSim::new(CloudConfig::default(), trace, seed);
        cloud.request_spot(SimTime::ZERO, 12);
        let mut events = 0;
        let mut last = SimTime::ZERO;
        while let Some((t, _)) = cloud.pop_next() {
            prop_assert!(t >= last, "events must be time-ordered");
            last = t;
            events += 1;
            prop_assert!(events < 10_000, "no event storms");
        }
    }

    #[test]
    fn exec_latency_monotone_in_output_length(
        s_out in 1u32..256,
    ) {
        let model = ModelSpec::gpt_20b();
        let cost = calibration::calibrated_cost_model(&model);
        let a = cost.exec_latency(&model, 3, 4, 1, 512, s_out);
        let b = cost.exec_latency(&model, 3, 4, 1, 512, s_out + 1);
        prop_assert!(b > a);
    }
}
