//! Umbrella crate for the SpotServe reproduction workspace.
//!
//! Re-exports the member crates so examples and integration tests have a
//! single dependency surface. See the [`spotserve`] crate for the system
//! itself and `README.md` for the experiment harness.

pub use cloudsim;
pub use enginesim;
pub use fleetctl;
pub use kmatch;
pub use llmsim;
pub use migration;
pub use parallelism;
pub use simkit;
pub use spotserve;
pub use telemetry;
pub use workload;
